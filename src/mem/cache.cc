#include "mem/cache.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/logging.hh"

namespace svr
{

Cache::Cache(const CacheParams &params) : p(params)
{
    if (p.sizeBytes == 0 || p.assoc == 0)
        fatal("Cache '%s': bad geometry", p.name.c_str());
    const std::uint64_t num_lines = p.sizeBytes / cacheLineBytes;
    if (num_lines % p.assoc != 0)
        fatal("Cache '%s': size/assoc mismatch", p.name.c_str());
    numSets = static_cast<unsigned>(num_lines / p.assoc);
    if ((numSets & (numSets - 1)) != 0)
        fatal("Cache '%s': number of sets must be a power of two",
              p.name.c_str());
    lines.resize(num_lines);
    if (p.numMshrs == 0)
        fatal("Cache '%s': need at least one MSHR", p.name.c_str());
    mshrFreeHeap.assign(p.numMshrs, 0);

    // Index sized for <= 50% load at numMshrs entries; it grows if
    // undrained entries ever exceed that (entries outlive their slot).
    const std::size_t cap =
        std::bit_ceil<std::size_t>(std::max<std::size_t>(16, 2 * p.numMshrs));
    pendingSlots.assign(cap, -1);
    pendingSlotMask = cap - 1;
    pending.reserve(cap);
}

unsigned
Cache::setIndex(Addr line_addr) const
{
    return static_cast<unsigned>((line_addr / cacheLineBytes) &
                                 (numSets - 1));
}

std::size_t
Cache::hashSlot(Addr line_addr) const
{
    std::uint64_t h =
        (line_addr / cacheLineBytes) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h) & pendingSlotMask;
}

int
Cache::findPending(Addr line_addr) const
{
    std::size_t s = hashSlot(line_addr);
    while (true) {
        const std::int32_t idx = pendingSlots[s];
        if (idx < 0)
            return -1;
        if (pending[static_cast<std::size_t>(idx)].line == line_addr)
            return idx;
        s = (s + 1) & pendingSlotMask;
    }
}

void
Cache::indexPending(Addr line_addr, int idx)
{
    std::size_t s = hashSlot(line_addr);
    while (pendingSlots[s] >= 0)
        s = (s + 1) & pendingSlotMask;
    pendingSlots[s] = idx;
}

void
Cache::rebuildPendingIndex()
{
    if (pending.size() * 2 > pendingSlots.size()) {
        const std::size_t cap = pendingSlots.size() * 2;
        pendingSlots.assign(cap, -1);
        pendingSlotMask = cap - 1;
    } else {
        std::fill(pendingSlots.begin(), pendingSlots.end(), -1);
    }
    for (std::size_t i = 0; i < pending.size(); i++)
        indexPending(pending[i].line, static_cast<int>(i));
}

bool
Cache::lookup(Addr line_addr, bool is_demand, bool &out_first_use,
              PrefetchOrigin &out_origin)
{
    out_first_use = false;
    out_origin = PrefetchOrigin::None;
    const unsigned set = setIndex(line_addr);
    Line *base = &lines[static_cast<std::size_t>(set) * p.assoc];
    for (unsigned w = 0; w < p.assoc; w++) {
        Line &line = base[w];
        if (line.valid && line.tag == line_addr) {
            hits++;
            line.lastUse = ++useClock;
            out_origin = line.origin;
            if (is_demand && line.origin != PrefetchOrigin::None &&
                !line.prefUsed) {
                line.prefUsed = true;
                out_first_use = true;
                prefetchFirstUse[static_cast<unsigned>(line.origin)]++;
            }
            // Keep ways MRU-first so the hot line is checked first on
            // the next lookup (position never affects victim choice:
            // valid lines have unique lastUse values).
            if (w != 0)
                std::swap(base[0], line);
            return true;
        }
    }
    misses++;
    return false;
}

bool
Cache::contains(Addr line_addr) const
{
    const unsigned set = setIndex(line_addr);
    const Line *base = &lines[static_cast<std::size_t>(set) * p.assoc];
    for (unsigned w = 0; w < p.assoc; w++) {
        if (base[w].valid && base[w].tag == line_addr)
            return true;
    }
    return false;
}

EvictResult
Cache::insert(Addr line_addr, PrefetchOrigin origin, bool dirty)
{
    EvictResult result;
    const unsigned set = setIndex(line_addr);
    Line *base = &lines[static_cast<std::size_t>(set) * p.assoc];
    // If already present (e.g. a racing fill), just update.
    for (unsigned w = 0; w < p.assoc; w++) {
        if (base[w].valid && base[w].tag == line_addr) {
            base[w].dirty = base[w].dirty || dirty;
            return result;
        }
    }
    // Choose an invalid way, else the LRU way.
    Line *victim = nullptr;
    for (unsigned w = 0; w < p.assoc; w++) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
    }
    if (!victim) {
        victim = base;
        for (unsigned w = 1; w < p.assoc; w++) {
            if (base[w].lastUse < victim->lastUse)
                victim = &base[w];
        }
        result.evictedValid = true;
        result.evictedDirty = victim->dirty;
        result.evictedLine = victim->tag;
        result.evictedOrigin = victim->origin;
        if (victim->origin != PrefetchOrigin::None && !victim->prefUsed) {
            result.evictedUnusedPrefetch = true;
            prefetchEvictedUnused[static_cast<unsigned>(victim->origin)]++;
        }
        if (victim->dirty)
            writebacks++;
    }
    victim->tag = line_addr;
    victim->valid = true;
    victim->dirty = dirty;
    victim->lastUse = ++useClock;
    victim->origin = origin;
    victim->prefUsed = false;
    // Fresh fills are MRU: move to the front of the set.
    if (victim != base)
        std::swap(*base, *victim);
    return result;
}

void
Cache::setDirty(Addr line_addr)
{
    const unsigned set = setIndex(line_addr);
    Line *base = &lines[static_cast<std::size_t>(set) * p.assoc];
    for (unsigned w = 0; w < p.assoc; w++) {
        if (base[w].valid && base[w].tag == line_addr) {
            base[w].dirty = true;
            return;
        }
    }
}

void
Cache::reset()
{
    for (auto &line : lines)
        line = Line{};
    useClock = 0;
    std::fill(mshrFreeHeap.begin(), mshrFreeHeap.end(), 0);
    pending.clear();
    std::fill(pendingSlots.begin(), pendingSlots.end(), -1);
    earliestDone = neverDone;
    hits = misses = writebacks = 0;
    for (unsigned i = 0; i < numPrefetchOrigins; i++) {
        prefetchFirstUse[i] = 0;
        prefetchEvictedUnused[i] = 0;
    }
}

Cycle
Cache::outstandingMiss(Addr line_addr, Cycle now) const
{
    const int idx = findPending(line_addr);
    if (idx < 0)
        return 0;
    const Cycle done = pending[static_cast<std::size_t>(idx)].done;
    return done > now ? done : 0;
}

Cycle
Cache::mshrAvailable(Cycle now) const
{
    return std::max(now, mshrFreeHeap[0]);
}

void
Cache::allocateMshr(Addr line_addr, Cycle start, Cycle done)
{
    // Occupy the MSHR that frees earliest (the heap root).
    if (mshrFreeHeap[0] > start)
        panic("Cache '%s': MSHR allocated before one is free", p.name.c_str());
    mshrFreeHeap[0] = done;
    const std::size_t n = mshrFreeHeap.size();
    std::size_t i = 0;
    while (true) {
        const std::size_t l = 2 * i + 1;
        const std::size_t r = l + 1;
        std::size_t min = i;
        if (l < n && mshrFreeHeap[l] < mshrFreeHeap[min])
            min = l;
        if (r < n && mshrFreeHeap[r] < mshrFreeHeap[min])
            min = r;
        if (min == i)
            break;
        std::swap(mshrFreeHeap[i], mshrFreeHeap[min]);
        i = min;
    }

    const int idx = findPending(line_addr);
    if (idx >= 0) {
        // Re-allocation of a line whose previous miss completed but is
        // not drained yet: restart its entry, as map assignment did.
        pending[static_cast<std::size_t>(idx)] = {
            line_addr, done, PrefetchOrigin::None, false, false};
    } else {
        if ((pending.size() + 1) * 2 > pendingSlots.size()) {
            pending.push_back(
                {line_addr, done, PrefetchOrigin::None, false, false});
            rebuildPendingIndex(); // grows and re-indexes
        } else {
            indexPending(line_addr, static_cast<int>(pending.size()));
            pending.push_back(
                {line_addr, done, PrefetchOrigin::None, false, false});
        }
    }
    if (done < earliestDone)
        earliestDone = done;
}

void
Cache::setPendingFill(Addr line_addr, PrefetchOrigin origin, bool dirty,
                      bool from_dram)
{
    const int idx = findPending(line_addr);
    if (idx < 0)
        panic("Cache '%s': setPendingFill on non-outstanding line",
              p.name.c_str());
    PendingMiss &m = pending[static_cast<std::size_t>(idx)];
    m.origin = origin;
    m.dirty = m.dirty || dirty;
    m.fromDram = from_dram;
}

PrefetchOrigin
Cache::pendingOrigin(Addr line_addr) const
{
    const int idx = findPending(line_addr);
    return idx < 0 ? PrefetchOrigin::None
                   : pending[static_cast<std::size_t>(idx)].origin;
}

void
Cache::convertPendingToDemand(Addr line_addr)
{
    const int idx = findPending(line_addr);
    if (idx < 0)
        return;
    PendingMiss &m = pending[static_cast<std::size_t>(idx)];
    if (m.origin == PrefetchOrigin::None)
        return;
    prefetchFirstUse[static_cast<unsigned>(m.origin)]++;
    m.origin = PrefetchOrigin::None;
}

bool
Cache::pendingFromDram(Addr line_addr) const
{
    const int idx = findPending(line_addr);
    return idx >= 0 && pending[static_cast<std::size_t>(idx)].fromDram;
}

void
Cache::markPrefetchUsed(Addr line_addr)
{
    const unsigned set = setIndex(line_addr);
    Line *base = &lines[static_cast<std::size_t>(set) * p.assoc];
    for (unsigned w = 0; w < p.assoc; w++) {
        Line &line = base[w];
        if (line.valid && line.tag == line_addr) {
            if (line.origin != PrefetchOrigin::None && !line.prefUsed) {
                line.prefUsed = true;
                prefetchFirstUse[static_cast<unsigned>(line.origin)]++;
            }
            return;
        }
    }
}

} // namespace svr
