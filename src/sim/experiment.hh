/**
 * @file
 * Experiment helpers shared by the bench harnesses: run a matrix of
 * (workload x config), aggregate, and print paper-style tables.
 */

#ifndef SVR_SIM_EXPERIMENT_HH
#define SVR_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace svr
{

/** All results for one workload across the config set. */
struct MatrixRow
{
    std::string workload;
    std::vector<SimResult> results; //!< one per config, same order
};

/**
 * Simulate every workload under every config.
 * Prints one progress line per workload via inform().
 */
std::vector<MatrixRow> runMatrix(const std::vector<WorkloadSpec> &workloads,
                                 const std::vector<SimConfig> &configs);

/** Harmonic-mean IPC per config over the matrix. */
std::vector<double> harmonicMeanIpc(const std::vector<MatrixRow> &matrix);

/**
 * Harmonic-mean speedup per config, normalized to config index
 * @p baseline (per-workload IPC ratios, then harmonic mean).
 */
std::vector<double> meanSpeedup(const std::vector<MatrixRow> &matrix,
                                std::size_t baseline);

/** Arithmetic-mean energy-per-instruction per config [nJ]. */
std::vector<double> meanEnergyPerInstr(const std::vector<MatrixRow> &matrix);

/** Print a metric table: one row per workload, one column per config. */
void printMetricTable(const std::vector<MatrixRow> &matrix,
                      const std::vector<std::string> &config_labels,
                      const std::string &metric_name,
                      double (*metric)(const SimResult &));

/** Fixed-width cell printing helpers. */
void printHeader(const std::string &first,
                 const std::vector<std::string> &labels);
void printRow(const std::string &name, const std::vector<double> &values);

} // namespace svr

#endif // SVR_SIM_EXPERIMENT_HH
