/**
 * @file
 * Experiment helpers shared by the bench harnesses: run a matrix of
 * (workload x config) — in parallel across a work-stealing thread
 * pool — aggregate, and print paper-style tables.
 *
 * Determinism contract: runMatrix() output (results, their order, and
 * every per-cell metric) is bit-identical for any job count. Each
 * cell is an independent simulation with its own seed-derived RNG
 * stream (Rng::cellSeed(base, workload, config)), and results are
 * written into preallocated slots keyed by (workload, config) index,
 * so scheduling never reorders or perturbs anything. Only the
 * progress lines on stderr and the wall-clock timings may vary.
 */

#ifndef SVR_SIM_EXPERIMENT_HH
#define SVR_SIM_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace svr
{

/** Host-side measurement of one simulated cell (not deterministic). */
struct CellTiming
{
    double millis = 0.0;          //!< wall-clock time for the cell
    std::uint64_t streamSeed = 0; //!< derived RNG stream seed (replayable)
};

/** All results for one workload across the config set. */
struct MatrixRow
{
    std::string workload;
    std::vector<SimResult> results;   //!< one per config, same order
    std::vector<CellTiming> timings;  //!< parallel to results
};

/** Knobs for the parallel experiment engine. */
struct MatrixOptions
{
    /** Worker threads; 0 = SVRSIM_JOBS env, else hardware threads. */
    unsigned jobs = 0;
    /** Base seed every per-cell RNG stream is derived from. */
    std::uint64_t baseSeed = 0x5eed5eed5eed5eedULL;
    /** Emit one inform() line per finished workload. */
    bool progress = true;
    /** Emit the aggregate "N cells in S s (R cells/sec)" line. */
    bool summary = true;

    /**
     * Fault isolation. With keepGoing a cell whose simulation throws
     * a SimError becomes a deterministic failure record (see
     * SimResult::failed) and the rest of the matrix still runs;
     * without it (default) the first failed cell aborts runMatrix()
     * with that SimError, preserving the historical fail-fast
     * behaviour. Each cell gets up to maxAttempts tries before its
     * failure is recorded.
     */
    bool keepGoing = false;
    unsigned maxAttempts = 1;

    /** Injected faults (tests / SVRSIM_FAULT); empty = none. */
    FaultPlan faultPlan;

    /**
     * Resume hook: return true and fill @p out to skip simulating a
     * cell (its result was journaled by an earlier run). Called from
     * worker threads; must be thread-safe (a read-only map is).
     */
    std::function<bool(const std::string &workload,
                       const std::string &config, SimResult &out)>
        restoreCell;

    /**
     * Completion hook for crash-safe journaling: called once per
     * freshly simulated (not restored) cell, serialized under an
     * engine-internal mutex. Call order depends on scheduling — only
     * the set of calls is deterministic, so consumers must not
     * derive ordered output from it.
     */
    std::function<void(const SimResult &result)> onCellDone;
};

/** Host-side wall-clock summary of one runMatrix() call. */
struct MatrixTiming
{
    double wallSeconds = 0.0;
    std::size_t cells = 0;
    unsigned jobs = 1;
    /** Simulated instructions summed over every cell. */
    std::uint64_t instructions = 0;
    /** Cells recorded as failed (keep-going mode). */
    std::size_t failedCells = 0;
    /** Cells restored from a journal instead of simulated. */
    std::size_t restoredCells = 0;
    double cellsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(cells) / wallSeconds
                   : 0.0;
    }
    /**
     * Aggregate simulated instructions per host second, in millions —
     * every sweep doubles as a sim-speed measurement (tracked over
     * time in BENCH_simspeed.json).
     */
    double msimips() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(instructions) /
                         (wallSeconds * 1e6)
                   : 0.0;
    }
};

/**
 * Run one (workload, config) cell with the engine's fault isolation:
 * legacy panic()/fatal() sites captured as SimErrors, injected faults
 * applied, up to opts.maxAttempts tries. On final failure either
 * rethrows (fail-fast) or returns a deterministic failure record
 * (opts.keepGoing). This is the exact per-cell path runMatrix() uses;
 * the distributed fabric workers (sim/fabric.hh) call it directly so
 * a cell computes the same bytes no matter which process runs it.
 */
SimResult runIsolatedCell(const WorkloadSpec &spec, const SimConfig &config,
                          const MatrixOptions &opts);

/**
 * Simulate every workload under every config, sharding the cells
 * across the thread pool. Results are ordered workload-major exactly
 * like the historical serial loop. If @p timing is non-null it
 * receives the aggregate wall-clock summary.
 */
std::vector<MatrixRow> runMatrix(const std::vector<WorkloadSpec> &workloads,
                                 const std::vector<SimConfig> &configs,
                                 const MatrixOptions &opts,
                                 MatrixTiming *timing = nullptr);

/** runMatrix() with default options (auto jobs, progress lines). */
std::vector<MatrixRow> runMatrix(const std::vector<WorkloadSpec> &workloads,
                                 const std::vector<SimConfig> &configs);

/** Flatten a matrix into workload-major result order (sweep output). */
std::vector<SimResult> flattenMatrix(const std::vector<MatrixRow> &matrix);

/** Harmonic-mean IPC per config over the matrix. */
std::vector<double> harmonicMeanIpc(const std::vector<MatrixRow> &matrix);

/**
 * Harmonic-mean speedup per config, normalized to config index
 * @p baseline (per-workload IPC ratios, then harmonic mean).
 */
std::vector<double> meanSpeedup(const std::vector<MatrixRow> &matrix,
                                std::size_t baseline);

/** Arithmetic-mean energy-per-instruction per config [nJ]. */
std::vector<double> meanEnergyPerInstr(const std::vector<MatrixRow> &matrix);

/** Print a metric table: one row per workload, one column per config. */
void printMetricTable(const std::vector<MatrixRow> &matrix,
                      const std::vector<std::string> &config_labels,
                      const std::string &metric_name,
                      double (*metric)(const SimResult &));

/** Fixed-width cell printing helpers. */
void printHeader(const std::string &first,
                 const std::vector<std::string> &labels);
void printRow(const std::string &name, const std::vector<double> &values);

} // namespace svr

#endif // SVR_SIM_EXPERIMENT_HH
