#include "sim/config.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace svr
{

const char *
coreTypeName(CoreType t)
{
    switch (t) {
      case CoreType::InOrder: return "in-order";
      case CoreType::InOrderImp: return "IMP";
      case CoreType::OutOfOrder: return "out-of-order";
      case CoreType::Svr: return "SVR";
      default: return "<bad>";
    }
}

namespace presets
{

std::uint64_t
simWindow()
{
    if (const char *env = std::getenv("SVR_WINDOW")) {
        const auto v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return 400000;
}

SimConfig
inorder()
{
    SimConfig c;
    c.label = "InO";
    c.core = CoreType::InOrder;
    c.maxInstructions = simWindow();
    return c;
}

SimConfig
impCore()
{
    SimConfig c = inorder();
    c.label = "IMP";
    c.core = CoreType::InOrderImp;
    return c;
}

SimConfig
outOfOrder()
{
    SimConfig c = inorder();
    c.label = "OoO";
    c.core = CoreType::OutOfOrder;
    return c;
}

SimConfig
svrCore(unsigned n)
{
    SimConfig c = inorder();
    c.label = "SVR" + std::to_string(n);
    c.core = CoreType::Svr;
    c.svr.vectorLength = n;
    return c;
}

SimConfig
byName(const std::string &name)
{
    if (name == "ino")
        return inorder();
    if (name == "imp")
        return impCore();
    if (name == "ooo")
        return outOfOrder();
    if (name.rfind("svr", 0) == 0) {
        const std::string digits = name.substr(3);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos) {
            fatal("bad config '%s': svr needs a numeric vector length "
                  "(e.g. svr16)",
                  name.c_str());
        }
        char *end = nullptr;
        const unsigned long n = std::strtoul(digits.c_str(), &end, 10);
        if (n == 0 || n > 65536)
            fatal("bad config '%s': vector length must be in [1, 65536]",
                  name.c_str());
        return svrCore(static_cast<unsigned>(n));
    }
    fatal("unknown config '%s' (want ino, imp, ooo, or svrN)",
          name.c_str());
}

} // namespace presets

} // namespace svr
