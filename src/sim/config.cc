#include "sim/config.hh"

#include <cstdlib>

#include "common/error.hh"
#include "common/logging.hh"

namespace svr
{

namespace
{

/** Error context naming the offending config cell. */
ErrContext
configContext(const SimConfig &config)
{
    ErrContext ctx;
    ctx.config = config.label;
    return ctx;
}

/** One cache level's geometry sanity checks. */
void
validateCache(const SimConfig &config, const CacheParams &c)
{
    if (c.sizeBytes == 0 || c.assoc == 0 || c.numMshrs == 0) {
        throw simErrorf(ErrCode::ConfigInvalid, configContext(config),
                        "config '%s': cache '%s' needs nonzero size/"
                        "assoc/MSHRs (got %llu/%u/%u)",
                        config.label.c_str(), c.name.c_str(),
                        static_cast<unsigned long long>(c.sizeBytes),
                        c.assoc, c.numMshrs);
    }
}

[[noreturn]] void
invalid(const SimConfig &config, const char *what)
{
    throw simErrorf(ErrCode::ConfigInvalid, configContext(config),
                    "config '%s': %s", config.label.c_str(), what);
}

} // namespace

void
validateConfig(const SimConfig &config)
{
    if (config.maxInstructions == 0)
        invalid(config, "maxInstructions must be nonzero");
    if (config.inorder.width == 0)
        invalid(config, "in-order width must be nonzero");
    if (config.ooo.width == 0 || config.ooo.robSize == 0 ||
        config.ooo.rsSize == 0 || config.ooo.lsqSize == 0) {
        invalid(config, "OoO width/ROB/RS/LSQ must all be nonzero");
    }
    validateCache(config, config.mem.l1i);
    validateCache(config, config.mem.l1d);
    validateCache(config, config.mem.l2);
    if (config.mem.dram.bandwidthGiBps <= 0.0 ||
        config.mem.dram.coreFreqGHz <= 0.0 ||
        config.mem.dram.latencyNs < 0.0) {
        invalid(config, "DRAM bandwidth/frequency must be positive");
    }
    if (config.mem.translation.numWalkers == 0 ||
        config.mem.translation.dtlbEntries == 0 ||
        config.mem.translation.stlbEntries == 0 ||
        config.mem.translation.stlbAssoc == 0) {
        invalid(config, "translation walkers/TLB geometry must be "
                        "nonzero");
    }
    if (config.core == CoreType::Svr &&
        (config.svr.vectorLength == 0 || config.svr.numSrfRegs == 0 ||
         config.svr.svuWidth == 0 || config.svr.prmTimeout == 0)) {
        invalid(config, "SVR vector length/SRF regs/SVU width/PRM "
                        "timeout must be nonzero");
    }
    if (config.sampling.enabled()) {
        if (config.sampling.sampleWindow == 0)
            invalid(config, "sampling needs a nonzero sample window");
        if (config.sampling.sampleWindow + config.sampling.warmup >
            config.sampling.sampleEvery) {
            invalid(config, "sampling warmup + window must fit inside "
                            "the sampling period");
        }
    }
}

const char *
coreTypeName(CoreType t)
{
    switch (t) {
      case CoreType::InOrder: return "in-order";
      case CoreType::InOrderImp: return "IMP";
      case CoreType::OutOfOrder: return "out-of-order";
      case CoreType::Svr: return "SVR";
      default: return "<bad>";
    }
}

namespace presets
{

std::uint64_t
simWindow()
{
    if (const char *env = std::getenv("SVR_WINDOW")) {
        const auto v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return 400000;
}

SimConfig
inorder()
{
    SimConfig c;
    c.label = "InO";
    c.core = CoreType::InOrder;
    c.maxInstructions = simWindow();
    return c;
}

SimConfig
impCore()
{
    SimConfig c = inorder();
    c.label = "IMP";
    c.core = CoreType::InOrderImp;
    return c;
}

SimConfig
outOfOrder()
{
    SimConfig c = inorder();
    c.label = "OoO";
    c.core = CoreType::OutOfOrder;
    return c;
}

SimConfig
svrCore(unsigned n)
{
    SimConfig c = inorder();
    c.label = "SVR" + std::to_string(n);
    c.core = CoreType::Svr;
    c.svr.vectorLength = n;
    return c;
}

SimConfig
byName(const std::string &name)
{
    if (name == "ino")
        return inorder();
    if (name == "imp")
        return impCore();
    if (name == "ooo")
        return outOfOrder();
    if (name.rfind("svr", 0) == 0) {
        const std::string digits = name.substr(3);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos) {
            fatal("bad config '%s': svr needs a numeric vector length "
                  "(e.g. svr16)",
                  name.c_str());
        }
        char *end = nullptr;
        const unsigned long n = std::strtoul(digits.c_str(), &end, 10);
        if (n == 0 || n > 65536)
            fatal("bad config '%s': vector length must be in [1, 65536]",
                  name.c_str());
        return svrCore(static_cast<unsigned>(n));
    }
    fatal("unknown config '%s' (want ino, imp, ooo, or svrN)",
          name.c_str());
}

} // namespace presets

} // namespace svr
