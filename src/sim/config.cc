#include "sim/config.hh"

#include <cstdlib>

namespace svr
{

const char *
coreTypeName(CoreType t)
{
    switch (t) {
      case CoreType::InOrder: return "in-order";
      case CoreType::InOrderImp: return "IMP";
      case CoreType::OutOfOrder: return "out-of-order";
      case CoreType::Svr: return "SVR";
      default: return "<bad>";
    }
}

namespace presets
{

std::uint64_t
simWindow()
{
    if (const char *env = std::getenv("SVR_WINDOW")) {
        const auto v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return 400000;
}

SimConfig
inorder()
{
    SimConfig c;
    c.label = "InO";
    c.core = CoreType::InOrder;
    c.maxInstructions = simWindow();
    return c;
}

SimConfig
impCore()
{
    SimConfig c = inorder();
    c.label = "IMP";
    c.core = CoreType::InOrderImp;
    return c;
}

SimConfig
outOfOrder()
{
    SimConfig c = inorder();
    c.label = "OoO";
    c.core = CoreType::OutOfOrder;
    return c;
}

SimConfig
svrCore(unsigned n)
{
    SimConfig c = inorder();
    c.label = "SVR" + std::to_string(n);
    c.core = CoreType::Svr;
    c.svr.vectorLength = n;
    return c;
}

} // namespace presets

} // namespace svr
