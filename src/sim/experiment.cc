#include "sim/experiment.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace svr
{

SimResult
runIsolatedCell(const WorkloadSpec &spec, const SimConfig &config,
                const MatrixOptions &opts)
{
    for (unsigned attempt = 1;; attempt++) {
        try {
            WorkloadInstance w;
            {
                ScopedErrorCapture scope(ErrCode::WorkloadBuild);
                w = spec.make();
            }
            ScopedErrorCapture scope(ErrCode::ConfigInvalid);
            if (opts.faultPlan.shouldThrow(spec.name, config.label,
                                           attempt, opts.baseSeed)) {
                throw simErrorf(ErrCode::InternalInvariant, {},
                                "injected fault (attempt %u)", attempt);
            }
            SimResult res =
                opts.faultPlan.shouldHang(spec.name, config.label)
                    ? simulateInjectedHang(config, w)
                    : simulate(config, w);
            res.attempts = attempt;
            return res;
        } catch (const SimError &e) {
            if (attempt < opts.maxAttempts)
                continue;
            const SimError err =
                SimError::withCell(e, spec.name, config.label);
            if (!opts.keepGoing)
                throw err;
            SimResult res;
            res.workload = spec.name;
            res.config = config.label;
            res.failed = true;
            res.errCode = errCodeName(err.code());
            res.errMessage = err.what();
            res.attempts = attempt;
            return res;
        }
    }
}

std::vector<MatrixRow>
runMatrix(const std::vector<WorkloadSpec> &workloads,
          const std::vector<SimConfig> &configs, const MatrixOptions &opts,
          MatrixTiming *timing)
{
    using Clock = std::chrono::steady_clock;

    const std::size_t num_workloads = workloads.size();
    const std::size_t num_configs = configs.size();
    const std::size_t num_cells = num_workloads * num_configs;

    // Preallocate every result slot up front: each cell writes only
    // matrix[wi].results[ci], so workers never touch shared state and
    // the output order is fixed regardless of scheduling.
    std::vector<MatrixRow> matrix(num_workloads);
    std::vector<std::atomic<std::size_t>> cells_left(num_workloads);
    for (std::size_t wi = 0; wi < num_workloads; wi++) {
        matrix[wi].workload = workloads[wi].name;
        matrix[wi].results.resize(num_configs);
        matrix[wi].timings.resize(num_configs);
        cells_left[wi].store(num_configs, std::memory_order_relaxed);
    }

    ThreadPool pool(opts.jobs);
    std::mutex done_mutex; // serializes the onCellDone journal hook
    std::atomic<std::size_t> restored_cells{0};
    const auto t_start = Clock::now();
    pool.parallelFor(num_cells, [&](std::size_t idx) {
        const std::size_t wi = idx / num_configs;
        const std::size_t ci = idx % num_configs;
        const WorkloadSpec &spec = workloads[wi];
        const SimConfig &config = configs[ci];

        // Every cell gets its own seed-derived stream, keyed by name
        // rather than index, so the stream survives matrix reshapes.
        const std::uint64_t stream =
            Rng::cellSeed(opts.baseSeed, spec.name, config.label);

        const auto c_start = Clock::now();
        SimResult res;
        const bool restored =
            opts.restoreCell &&
            opts.restoreCell(spec.name, config.label, res);
        if (!restored) {
            res = runIsolatedCell(spec, config, opts);
            // The cell identity is the spec name, not whatever the
            // workload instance called itself — journal keys and the
            // restoreCell() lookup must agree on it.
            res.workload = spec.name;
            res.config = config.label;
        } else {
            restored_cells.fetch_add(1, std::memory_order_relaxed);
        }
        matrix[wi].results[ci] = std::move(res);
        const std::chrono::duration<double, std::milli> c_elapsed =
            Clock::now() - c_start;
        matrix[wi].timings[ci] = {c_elapsed.count(), stream};

        if (!restored && opts.onCellDone) {
            std::lock_guard<std::mutex> lock(done_mutex);
            opts.onCellDone(matrix[wi].results[ci]);
        }

        if (cells_left[wi].fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            opts.progress) {
            inform("done: %-12s (%zu configs)", spec.name.c_str(),
                   num_configs);
        }
    });
    const std::chrono::duration<double> elapsed = Clock::now() - t_start;

    MatrixTiming t;
    t.wallSeconds = elapsed.count();
    t.cells = num_cells;
    t.jobs = pool.concurrency();
    t.restoredCells = restored_cells.load(std::memory_order_relaxed);
    for (const auto &row : matrix) {
        for (const auto &res : row.results) {
            t.instructions += res.core.instructions;
            if (res.failed)
                t.failedCells++;
        }
    }
    if (opts.summary) {
        inform("matrix: %zu cells in %.2fs (%.2f cells/sec, "
               "%.2f Msimips, %u jobs)",
               t.cells, t.wallSeconds, t.cellsPerSec(), t.msimips(),
               t.jobs);
        if (t.failedCells > 0)
            warn("matrix: %zu cell(s) failed (see failure records)",
                 t.failedCells);
        if (t.restoredCells > 0)
            inform("matrix: %zu cell(s) restored from journal",
                   t.restoredCells);
    }
    if (timing)
        *timing = t;
    return matrix;
}

std::vector<MatrixRow>
runMatrix(const std::vector<WorkloadSpec> &workloads,
          const std::vector<SimConfig> &configs)
{
    return runMatrix(workloads, configs, MatrixOptions{});
}

std::vector<SimResult>
flattenMatrix(const std::vector<MatrixRow> &matrix)
{
    std::vector<SimResult> out;
    for (const auto &row : matrix)
        out.insert(out.end(), row.results.begin(), row.results.end());
    return out;
}

std::vector<double>
harmonicMeanIpc(const std::vector<MatrixRow> &matrix)
{
    if (matrix.empty())
        return {};
    std::vector<double> result;
    const std::size_t num_configs = matrix[0].results.size();
    for (std::size_t c = 0; c < num_configs; c++) {
        std::vector<double> ipcs;
        for (const auto &row : matrix)
            ipcs.push_back(row.results[c].ipc());
        result.push_back(harmonicMean(ipcs));
    }
    return result;
}

std::vector<double>
meanSpeedup(const std::vector<MatrixRow> &matrix, std::size_t baseline)
{
    if (matrix.empty())
        return {};
    std::vector<double> result;
    const std::size_t num_configs = matrix[0].results.size();
    for (std::size_t c = 0; c < num_configs; c++) {
        std::vector<double> speedups;
        for (const auto &row : matrix) {
            const double base = row.results[baseline].ipc();
            const double ipc = row.results[c].ipc();
            if (base > 0 && ipc > 0)
                speedups.push_back(ipc / base);
        }
        result.push_back(harmonicMean(speedups));
    }
    return result;
}

std::vector<double>
meanEnergyPerInstr(const std::vector<MatrixRow> &matrix)
{
    if (matrix.empty())
        return {};
    std::vector<double> result;
    const std::size_t num_configs = matrix[0].results.size();
    for (std::size_t c = 0; c < num_configs; c++) {
        std::vector<double> vals;
        for (const auto &row : matrix)
            vals.push_back(row.results[c].energyPerInstr());
        result.push_back(arithmeticMean(vals));
    }
    return result;
}

void
printHeader(const std::string &first, const std::vector<std::string> &labels)
{
    std::printf("%-12s", first.c_str());
    for (const auto &l : labels)
        std::printf(" %9s", l.c_str());
    std::printf("\n");
}

void
printRow(const std::string &name, const std::vector<double> &values)
{
    std::printf("%-12s", name.c_str());
    for (double v : values)
        std::printf(" %9.3f", v);
    std::printf("\n");
}

void
printMetricTable(const std::vector<MatrixRow> &matrix,
                 const std::vector<std::string> &config_labels,
                 const std::string &metric_name,
                 double (*metric)(const SimResult &))
{
    std::printf("# %s\n", metric_name.c_str());
    printHeader("workload", config_labels);
    for (const auto &row : matrix) {
        std::vector<double> vals;
        for (const auto &res : row.results)
            vals.push_back(metric(res));
        printRow(row.workload, vals);
    }
}

} // namespace svr
