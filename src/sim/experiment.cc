#include "sim/experiment.hh"

#include <cstdio>

#include "common/logging.hh"
#include "common/stats.hh"

namespace svr
{

std::vector<MatrixRow>
runMatrix(const std::vector<WorkloadSpec> &workloads,
          const std::vector<SimConfig> &configs)
{
    std::vector<MatrixRow> matrix;
    matrix.reserve(workloads.size());
    for (const auto &spec : workloads) {
        MatrixRow row;
        row.workload = spec.name;
        for (const auto &config : configs) {
            const WorkloadInstance w = spec.make();
            row.results.push_back(simulate(config, w));
        }
        inform("done: %-12s (%zu configs)", spec.name.c_str(),
               configs.size());
        matrix.push_back(std::move(row));
    }
    return matrix;
}

std::vector<double>
harmonicMeanIpc(const std::vector<MatrixRow> &matrix)
{
    if (matrix.empty())
        return {};
    std::vector<double> result;
    const std::size_t num_configs = matrix[0].results.size();
    for (std::size_t c = 0; c < num_configs; c++) {
        std::vector<double> ipcs;
        for (const auto &row : matrix)
            ipcs.push_back(row.results[c].ipc());
        result.push_back(harmonicMean(ipcs));
    }
    return result;
}

std::vector<double>
meanSpeedup(const std::vector<MatrixRow> &matrix, std::size_t baseline)
{
    if (matrix.empty())
        return {};
    std::vector<double> result;
    const std::size_t num_configs = matrix[0].results.size();
    for (std::size_t c = 0; c < num_configs; c++) {
        std::vector<double> speedups;
        for (const auto &row : matrix) {
            const double base = row.results[baseline].ipc();
            const double ipc = row.results[c].ipc();
            if (base > 0 && ipc > 0)
                speedups.push_back(ipc / base);
        }
        result.push_back(harmonicMean(speedups));
    }
    return result;
}

std::vector<double>
meanEnergyPerInstr(const std::vector<MatrixRow> &matrix)
{
    if (matrix.empty())
        return {};
    std::vector<double> result;
    const std::size_t num_configs = matrix[0].results.size();
    for (std::size_t c = 0; c < num_configs; c++) {
        std::vector<double> vals;
        for (const auto &row : matrix)
            vals.push_back(row.results[c].energyPerInstr());
        result.push_back(arithmeticMean(vals));
    }
    return result;
}

void
printHeader(const std::string &first, const std::vector<std::string> &labels)
{
    std::printf("%-12s", first.c_str());
    for (const auto &l : labels)
        std::printf(" %9s", l.c_str());
    std::printf("\n");
}

void
printRow(const std::string &name, const std::vector<double> &values)
{
    std::printf("%-12s", name.c_str());
    for (double v : values)
        std::printf(" %9.3f", v);
    std::printf("\n");
}

void
printMetricTable(const std::vector<MatrixRow> &matrix,
                 const std::vector<std::string> &config_labels,
                 const std::string &metric_name,
                 double (*metric)(const SimResult &))
{
    std::printf("# %s\n", metric_name.c_str());
    printHeader("workload", config_labels);
    for (const auto &row : matrix) {
        std::vector<double> vals;
        for (const auto &res : row.results)
            vals.push_back(metric(res));
        printRow(row.workload, vals);
    }
}

} // namespace svr
