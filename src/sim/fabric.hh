/**
 * @file
 * Distributed sweep fabric: a coordinator process enumerates the
 * (workload x config) cell matrix into leases and hands them to N
 * worker processes over the length-prefixed wire protocol
 * (common/wire.hh); workers simulate their cells with the exact
 * per-cell fault-isolation path runMatrix() uses and stream each
 * completed cell back as a journal record.
 *
 * Determinism contract: the merged artifact is byte-identical to a
 * serial single-process run of the same sweep. Each cell's RNG stream
 * is derived from (seed, workload, config) — never from scheduling —
 * and the journal-record serialization round-trips every reported
 * field exactly (integers verbatim, doubles as %.17g), so it does not
 * matter which process simulated a cell or in what order results
 * arrived: the coordinator reassembles them into workload-major order
 * and emits the same bytes the serial loop would.
 *
 * Fault tolerance: a worker that dies (SIGKILL, crash, network loss)
 * or goes silent past the lease timeout has the incomplete cells of
 * its lease reassigned to surviving workers; locally spawned workers
 * are respawned within a bounded budget. A cell whose workers die
 * maxCellAttempts times is declared poisoned: under keep-going it
 * becomes a deterministic SimError(WorkerLost) failure record, else
 * the sweep aborts with that error — the same isolation semantics the
 * thread-level engine gives a throwing cell.
 *
 * Chaos hardening (protocol v2):
 *  - Lease-epoch fencing: lease ids are monotonic and never reused
 *    (after a coordinator restart they start from a fresh pid-derived
 *    epoch), and a RESULT for a lease that is no longer active — the
 *    worker was declared dead and its cells reassigned, or the lease
 *    was granted by a previous coordinator incarnation — is answered
 *    with STALE and never stored. First-result-wins therefore always
 *    means "first result under a live lease".
 *  - Worker reconnect: a worker that loses its connection retries
 *    with exponential backoff + jitter inside a bounded window,
 *    re-handshakes (carrying its previous worker id so the rejoin is
 *    visible), verifies the sweep spec is unchanged, abandons any
 *    in-flight lease, and resumes taking leases.
 *  - Coordinator crash-recovery: the per-cell journal plus --resume
 *    is the recovery protocol — a restarted coordinator replays the
 *    journal, re-opens the same endpoint, and surviving workers
 *    reconnect; old-epoch results are fenced as STALE.
 *  - Straggler hedging: when the pending queue is empty, an idle
 *    worker is speculatively handed the still-incomplete cells of the
 *    oldest overdue lease (a hedge lease); whichever copy reports
 *    first wins, the other is a fenced/duplicate no-op.
 *
 * Wire grammar (text payloads inside frames; tokens are journal-
 * escaped, rest-of-line fields come last):
 *   worker -> coord:  HELLO <proto> <jobs> [<prevWorkerId>]
 *   coord  -> worker: WELCOME <workerId> <leaseTimeoutMs> <sweep-spec...>
 *   worker -> coord:  LEASE?
 *   coord  -> worker: LEASE <id> <n> <cell-idx>*n | WAIT | FIN
 *   worker -> coord:  RESULT <leaseId> <cellIdx> <journal-line...>
 *   coord  -> worker: OK | STALE | STOP  (reply to RESULT)
 *   worker -> coord:  DONE <leaseId>   |  PING
 *   coord  -> worker: OK | STOP        (reply to DONE/PING)
 *   worker -> coord:  ERROR <errCode> <message> <workload> <config>
 */

#ifndef SVR_SIM_FABRIC_HH
#define SVR_SIM_FABRIC_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/journal.hh"

namespace svr
{

/**
 * Bumped on any incompatible wire-grammar change. v2: CRC32-framed
 * transport (common/wire.hh), WELCOME carries the lease timeout,
 * HELLO carries an optional rejoin token, RESULT can be answered
 * STALE (lease fencing).
 */
constexpr unsigned fabricProtocolVersion = 2;

/**
 * Everything a worker needs to rebuild the coordinator's exact cell
 * matrix: the sweep identity (suite, config list, window, seed,
 * sampling) plus the fault-isolation knobs. Ships inside WELCOME, so
 * an external worker needs nothing but the coordinator's address.
 */
struct SweepSpec
{
    SweepKey key;
    bool keepGoing = false;
    unsigned retries = 1;

    /** Wire form: space-separated journal-escaped tokens. */
    std::string encode() const;
    /** Parse encode() output; false on a malformed spec. */
    static bool decode(const std::string &text, SweepSpec &out);

    /**
     * Rebuild the cell matrix: suiteByName(key.suite) workloads and
     * presets::byName() configs with window/sampling applied — the
     * same construction the sweep tool performs, so coordinator and
     * workers agree on every cell index.
     */
    void materialize(std::vector<WorkloadSpec> &workloads,
                     std::vector<SimConfig> &configs) const;
};

/**
 * Lease bookkeeping over cell indices 0..numCells-1 (workload-major,
 * the flattenMatrix() order). Not thread-safe — the coordinator holds
 * its own mutex; exposed here so the policy is unit-testable.
 */
class LeaseQueue
{
  public:
    /**
     * @p chunk cells max per lease; @p max_attempts worker deaths
     * before a cell is poisoned. Cells in @p already_done (e.g.
     * restored from a journal) are born completed and never leased.
     * @p epoch_base offsets every lease id — a restarted coordinator
     * passes a fresh epoch so ids granted by a previous incarnation
     * can never collide with (and thus never impersonate) live ones.
     */
    LeaseQueue(std::size_t num_cells, unsigned chunk,
               unsigned max_attempts,
               const std::vector<std::size_t> &already_done = {},
               std::uint64_t epoch_base = 0);

    /**
     * Take up to chunk pending cells as a new lease born at
     * @p now_ms (coordinator clock, used for hedging). Returns the
     * lease id (> 0) with the cells in @p out, or 0 when nothing is
     * pending (either all leased out elsewhere or all complete).
     */
    std::uint64_t take(std::vector<std::size_t> &out,
                       std::uint64_t now_ms = 0);

    /**
     * Straggler hedging: when nothing is pending, speculatively
     * re-lease the still-incomplete cells of the oldest overdue lease
     * (born more than @p overdue_ms before @p now_ms) that has not
     * been hedged yet. Returns the new (hedge) lease id, or 0 when no
     * lease qualifies. The hedge lease itself is never hedged again.
     */
    std::uint64_t hedge(std::vector<std::size_t> &out,
                        std::uint64_t now_ms, std::uint64_t overdue_ms);

    /**
     * Record one completed cell (results can arrive from a worker
     * whose lease was already reclaimed). False = duplicate, ignored.
     */
    bool complete(std::size_t cell);

    /**
     * A worker died holding @p lease_id: its incomplete cells go back
     * to the pending queue with one more attempt charged, except
     * cells that exhausted max_attempts, which are returned in
     * @p poisoned, and cells also held by another active (hedge)
     * lease, which stay leased there. Returns the requeued count.
     */
    std::size_t reclaim(std::uint64_t lease_id,
                        std::vector<std::size_t> &poisoned);

    /** A lease finished cleanly (DONE): drop its bookkeeping. */
    void release(std::uint64_t lease_id);

    /**
     * Lease fencing: is @p lease_id still live? A RESULT under a
     * reclaimed, released, or previous-epoch lease must be rejected.
     */
    bool leaseActive(std::uint64_t lease_id) const;

    /** All cells completed or poisoned. */
    bool allDone() const;
    std::size_t completedCells() const { return numDone; }
    std::size_t poisonedCells() const { return numPoisoned; }

  private:
    enum class CellState : std::uint8_t { Pending, Leased, Done, Poisoned };

    struct Cell
    {
        CellState state = CellState::Pending;
        unsigned attempts = 0; //!< lease assignments so far
    };

    struct LeaseInfo
    {
        std::vector<std::size_t> cells;
        std::uint64_t bornMs = 0;
        bool hedged = false; //!< already hedged, or itself a hedge
    };

    bool leasedElsewhere(std::size_t idx, std::uint64_t lease_id) const;

    std::vector<Cell> cells;
    std::vector<std::size_t> pending; //!< LIFO of leasable cell indices
    std::map<std::uint64_t, LeaseInfo> active;
    std::uint64_t nextLease = 1;
    unsigned chunkSize;
    unsigned maxAttempts;
    std::size_t numDone = 0;
    std::size_t numPoisoned = 0;
};

/** Coordinator-side knobs. */
struct FabricOptions
{
    /**
     * Endpoint to listen on ("unix:PATH" or "tcp:HOST:PORT"); empty
     * picks a private unix socket under @p scratchDir (or TMPDIR).
     */
    std::string listen;
    /** Directory for the auto unix socket (e.g. the artifact's dir). */
    std::string scratchDir;
    /** Worker processes to spawn locally (0 = external workers only). */
    unsigned spawnWorkers = 0;
    /** --jobs forwarded to each spawned worker (intra-worker threads). */
    unsigned workerJobs = 1;
    /** Cells per lease; 0 = auto from matrix size and worker count. */
    unsigned chunk = 0;
    /** Silence window after which a worker is declared dead [ms]. */
    int leaseTimeoutMs = 60000;
    /**
     * Heartbeat period forwarded to spawned workers and shipped to
     * external ones via WELCOME. Validated against the lease timeout:
     * a heartbeat period >= leaseTimeout/3 is rejected, because a
     * healthy worker must fit several heartbeats into one timeout
     * window before it can be declared dead.
     */
    int heartbeatMs = 1000;
    /**
     * Straggler hedging: a lease older than this with incomplete
     * cells may be speculatively re-leased to an idle worker.
     * 0 = auto (leaseTimeoutMs / 2), < 0 disables hedging.
     */
    int hedgeMs = 0;
    /** Worker deaths before a cell is poisoned (>= 1). */
    unsigned maxCellAttempts = 3;
    /** Total local respawns allowed across the sweep. */
    unsigned respawnBudget = 0; //!< 0 = auto (3x spawnWorkers)
    /** Path to the svrsim_worker binary; empty = next to this one. */
    std::string workerBinary;
    /** Emit progress lines (worker joins/losses, respawns). */
    bool progress = true;
};

/**
 * Run the sweep as fabric coordinator: lease cells to workers, merge
 * streamed results, journal each newly completed cell to @p journal
 * (may be null), and return the results in workload-major order —
 * byte-for-byte what flattenMatrix(runMatrix(...)) would produce.
 * @p restored cells are taken as already complete and never leased
 * (lease-aware resume). Throws SimError on a fail-fast cell failure,
 * a poisoned lease without keep-going, or a transport breakdown.
 * @p timing receives the wall-clock summary (jobs = workers seen).
 */
std::vector<SimResult>
runFabricSweep(const std::vector<WorkloadSpec> &workloads,
               const std::vector<SimConfig> &configs,
               const SweepSpec &spec, const FabricOptions &fopts,
               const JournalCells &restored, SweepJournal *journal,
               MatrixTiming *timing);

/** Worker-side knobs. */
struct WorkerOptions
{
    std::string connect;         //!< coordinator endpoint (required)
    unsigned jobs = 1;           //!< threads over the cells of a lease
    int heartbeatMs = 1000;      //!< PING period while simulating
    int connectTimeoutMs = 15000;
    int replyTimeoutMs = 30000;  //!< coordinator silence tolerance
    /**
     * Total window for reconnect attempts after a lost connection
     * (exponential backoff + jitter inside it); the worker gives up
     * with exit code 2 when it closes. 0 disables reconnecting.
     */
    int reconnectMs = 30000;
};

/**
 * Run as fabric worker: connect, receive the sweep spec, simulate
 * leased cells (ThreadPool-parallel within the lease when jobs > 1),
 * stream results, repeat until FIN. Returns a process exit code:
 * 0 = completed/FIN, 1 = fatal SimError (also reported to the
 * coordinator as ERROR), 2 = transport loss.
 */
int runFabricWorker(const WorkerOptions &opts);

} // namespace svr

#endif // SVR_SIM_FABRIC_HH
