/**
 * @file
 * Distributed sweep fabric: a coordinator process enumerates the
 * (workload x config) cell matrix into leases and hands them to N
 * worker processes over the length-prefixed wire protocol
 * (common/wire.hh); workers simulate their cells with the exact
 * per-cell fault-isolation path runMatrix() uses and stream each
 * completed cell back as a journal record.
 *
 * Determinism contract: the merged artifact is byte-identical to a
 * serial single-process run of the same sweep. Each cell's RNG stream
 * is derived from (seed, workload, config) — never from scheduling —
 * and the journal-record serialization round-trips every reported
 * field exactly (integers verbatim, doubles as %.17g), so it does not
 * matter which process simulated a cell or in what order results
 * arrived: the coordinator reassembles them into workload-major order
 * and emits the same bytes the serial loop would.
 *
 * Fault tolerance: a worker that dies (SIGKILL, crash, network loss)
 * or goes silent past the lease timeout has the incomplete cells of
 * its lease reassigned to surviving workers; locally spawned workers
 * are respawned within a bounded budget. A cell whose workers die
 * maxCellAttempts times is declared poisoned: under keep-going it
 * becomes a deterministic SimError(WorkerLost) failure record, else
 * the sweep aborts with that error — the same isolation semantics the
 * thread-level engine gives a throwing cell.
 *
 * Wire grammar (text payloads inside frames; tokens are journal-
 * escaped, rest-of-line fields come last):
 *   worker -> coord:  HELLO <proto> <jobs>
 *   coord  -> worker: WELCOME <workerId> <sweep-spec...>
 *   worker -> coord:  LEASE?
 *   coord  -> worker: LEASE <id> <n> <cell-idx>*n | WAIT | FIN
 *   worker -> coord:  RESULT <leaseId> <cellIdx> <journal-line...>
 *   worker -> coord:  DONE <leaseId>   |  PING
 *   coord  -> worker: OK | STOP        (reply to RESULT/DONE/PING)
 *   worker -> coord:  ERROR <errCode> <message> <workload> <config>
 */

#ifndef SVR_SIM_FABRIC_HH
#define SVR_SIM_FABRIC_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/journal.hh"

namespace svr
{

/** Bumped on any incompatible wire-grammar change. */
constexpr unsigned fabricProtocolVersion = 1;

/**
 * Everything a worker needs to rebuild the coordinator's exact cell
 * matrix: the sweep identity (suite, config list, window, seed,
 * sampling) plus the fault-isolation knobs. Ships inside WELCOME, so
 * an external worker needs nothing but the coordinator's address.
 */
struct SweepSpec
{
    SweepKey key;
    bool keepGoing = false;
    unsigned retries = 1;

    /** Wire form: space-separated journal-escaped tokens. */
    std::string encode() const;
    /** Parse encode() output; false on a malformed spec. */
    static bool decode(const std::string &text, SweepSpec &out);

    /**
     * Rebuild the cell matrix: suiteByName(key.suite) workloads and
     * presets::byName() configs with window/sampling applied — the
     * same construction the sweep tool performs, so coordinator and
     * workers agree on every cell index.
     */
    void materialize(std::vector<WorkloadSpec> &workloads,
                     std::vector<SimConfig> &configs) const;
};

/**
 * Lease bookkeeping over cell indices 0..numCells-1 (workload-major,
 * the flattenMatrix() order). Not thread-safe — the coordinator holds
 * its own mutex; exposed here so the policy is unit-testable.
 */
class LeaseQueue
{
  public:
    /**
     * @p chunk cells max per lease; @p max_attempts worker deaths
     * before a cell is poisoned. Cells in @p already_done (e.g.
     * restored from a journal) are born completed and never leased.
     */
    LeaseQueue(std::size_t num_cells, unsigned chunk,
               unsigned max_attempts,
               const std::vector<std::size_t> &already_done = {});

    /**
     * Take up to chunk pending cells as a new lease. Returns the
     * lease id (> 0) with the cells in @p out, or 0 when nothing is
     * pending (either all leased out elsewhere or all complete).
     */
    std::uint64_t take(std::vector<std::size_t> &out);

    /**
     * Record one completed cell (results can arrive from a worker
     * whose lease was already reclaimed). False = duplicate, ignored.
     */
    bool complete(std::size_t cell);

    /**
     * A worker died holding @p lease_id: its incomplete cells go back
     * to the pending queue with one more attempt charged, except
     * cells that exhausted max_attempts, which are returned in
     * @p poisoned. Returns the number of requeued cells.
     */
    std::size_t reclaim(std::uint64_t lease_id,
                        std::vector<std::size_t> &poisoned);

    /** A lease finished cleanly (DONE): drop its bookkeeping. */
    void release(std::uint64_t lease_id);

    /** All cells completed or poisoned. */
    bool allDone() const;
    std::size_t completedCells() const { return numDone; }
    std::size_t poisonedCells() const { return numPoisoned; }

  private:
    enum class CellState : std::uint8_t { Pending, Leased, Done, Poisoned };

    struct Cell
    {
        CellState state = CellState::Pending;
        unsigned attempts = 0; //!< lease assignments so far
    };

    std::vector<Cell> cells;
    std::vector<std::size_t> pending; //!< LIFO of leasable cell indices
    std::map<std::uint64_t, std::vector<std::size_t>> active;
    std::uint64_t nextLease = 1;
    unsigned chunkSize;
    unsigned maxAttempts;
    std::size_t numDone = 0;
    std::size_t numPoisoned = 0;
};

/** Coordinator-side knobs. */
struct FabricOptions
{
    /**
     * Endpoint to listen on ("unix:PATH" or "tcp:HOST:PORT"); empty
     * picks a private unix socket under @p scratchDir (or TMPDIR).
     */
    std::string listen;
    /** Directory for the auto unix socket (e.g. the artifact's dir). */
    std::string scratchDir;
    /** Worker processes to spawn locally (0 = external workers only). */
    unsigned spawnWorkers = 0;
    /** --jobs forwarded to each spawned worker (intra-worker threads). */
    unsigned workerJobs = 1;
    /** Cells per lease; 0 = auto from matrix size and worker count. */
    unsigned chunk = 0;
    /** Silence window after which a worker is declared dead [ms]. */
    int leaseTimeoutMs = 60000;
    /** Worker deaths before a cell is poisoned (>= 1). */
    unsigned maxCellAttempts = 3;
    /** Total local respawns allowed across the sweep. */
    unsigned respawnBudget = 0; //!< 0 = auto (3x spawnWorkers)
    /** Path to the svrsim_worker binary; empty = next to this one. */
    std::string workerBinary;
    /** Emit progress lines (worker joins/losses, respawns). */
    bool progress = true;
};

/**
 * Run the sweep as fabric coordinator: lease cells to workers, merge
 * streamed results, journal each newly completed cell to @p journal
 * (may be null), and return the results in workload-major order —
 * byte-for-byte what flattenMatrix(runMatrix(...)) would produce.
 * @p restored cells are taken as already complete and never leased
 * (lease-aware resume). Throws SimError on a fail-fast cell failure,
 * a poisoned lease without keep-going, or a transport breakdown.
 * @p timing receives the wall-clock summary (jobs = workers seen).
 */
std::vector<SimResult>
runFabricSweep(const std::vector<WorkloadSpec> &workloads,
               const std::vector<SimConfig> &configs,
               const SweepSpec &spec, const FabricOptions &fopts,
               const JournalCells &restored, SweepJournal *journal,
               MatrixTiming *timing);

/** Worker-side knobs. */
struct WorkerOptions
{
    std::string connect;         //!< coordinator endpoint (required)
    unsigned jobs = 1;           //!< threads over the cells of a lease
    int heartbeatMs = 1000;      //!< PING period while simulating
    int connectTimeoutMs = 15000;
    int replyTimeoutMs = 30000;  //!< coordinator silence tolerance
};

/**
 * Run as fabric worker: connect, receive the sweep spec, simulate
 * leased cells (ThreadPool-parallel within the lease when jobs > 1),
 * stream results, repeat until FIN. Returns a process exit code:
 * 0 = completed/FIN, 1 = fatal SimError (also reported to the
 * coordinator as ERROR), 2 = transport loss.
 */
int runFabricWorker(const WorkerOptions &opts);

} // namespace svr

#endif // SVR_SIM_FABRIC_HH
