#include "sim/sampled_sim.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "core/executor.hh"
#include "svr/svr_engine.hh"

namespace svr
{

std::uint64_t
fastForward(Executor &exec, std::uint64_t n)
{
    return exec.run(n);
}

namespace
{

/** Every memory-side counter a SimResult reports, snapshot-able. */
struct MemCounters
{
    std::uint64_t l1dHits = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1iHits = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramTransfers = 0;
    DramTraffic traffic;
    std::uint64_t tlbWalks = 0;
    std::uint64_t prefIssued[numPrefetchOrigins] = {};
    std::uint64_t llcPrefFirstUse[numPrefetchOrigins] = {};
    std::uint64_t llcPrefEvictedUnused[numPrefetchOrigins] = {};
};

MemCounters
captureCounters(const MemorySystem &mem)
{
    MemCounters c;
    c.l1dHits = mem.l1d().hits;
    c.l1dMisses = mem.l1d().misses;
    c.l1iHits = mem.l1i().hits;
    c.l1iMisses = mem.l1i().misses;
    c.l2Hits = mem.l2().hits;
    c.l2Misses = mem.l2().misses;
    c.dramTransfers = mem.dram().transfers();
    c.traffic = mem.dramTraffic();
    c.tlbWalks = mem.translation().walks;
    for (unsigned i = 0; i < numPrefetchOrigins; i++) {
        const auto origin = static_cast<PrefetchOrigin>(i);
        c.prefIssued[i] = mem.prefIssued(origin);
        c.llcPrefFirstUse[i] = mem.llcPrefFirstUse(origin);
        c.llcPrefEvictedUnused[i] = mem.llcPrefEvictedUnused(origin);
    }
    return c;
}

MemCounters
operator-(const MemCounters &a, const MemCounters &b)
{
    MemCounters d;
    d.l1dHits = a.l1dHits - b.l1dHits;
    d.l1dMisses = a.l1dMisses - b.l1dMisses;
    d.l1iHits = a.l1iHits - b.l1iHits;
    d.l1iMisses = a.l1iMisses - b.l1iMisses;
    d.l2Hits = a.l2Hits - b.l2Hits;
    d.l2Misses = a.l2Misses - b.l2Misses;
    d.dramTransfers = a.dramTransfers - b.dramTransfers;
    d.traffic.demandData = a.traffic.demandData - b.traffic.demandData;
    d.traffic.demandIfetch = a.traffic.demandIfetch - b.traffic.demandIfetch;
    d.traffic.prefStride = a.traffic.prefStride - b.traffic.prefStride;
    d.traffic.prefSvr = a.traffic.prefSvr - b.traffic.prefSvr;
    d.traffic.prefImp = a.traffic.prefImp - b.traffic.prefImp;
    d.traffic.writebacks = a.traffic.writebacks - b.traffic.writebacks;
    d.tlbWalks = a.tlbWalks - b.tlbWalks;
    for (unsigned i = 0; i < numPrefetchOrigins; i++) {
        d.prefIssued[i] = a.prefIssued[i] - b.prefIssued[i];
        d.llcPrefFirstUse[i] =
            a.llcPrefFirstUse[i] - b.llcPrefFirstUse[i];
        d.llcPrefEvictedUnused[i] =
            a.llcPrefEvictedUnused[i] - b.llcPrefEvictedUnused[i];
    }
    return d;
}

/**
 * Extrapolate one window counter to its whole period. The ratio-1
 * case (degenerate configs, where the window covers everything it
 * represents) stays exactly integral rather than round-tripping
 * through a double.
 */
std::uint64_t
scaled(std::uint64_t v, std::uint64_t represented, std::uint64_t measured)
{
    if (represented == measured)
        return v;
    const double ratio = static_cast<double>(represented) /
                         static_cast<double>(measured);
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(v) * ratio));
}

/** Accuracy from summed first-use / evicted-unused deltas. */
double
accuracyOf(std::uint64_t used, std::uint64_t unused)
{
    if (used + unused == 0)
        return 1.0;
    return static_cast<double>(used) / static_cast<double>(used + unused);
}

} // namespace

SimResult
simulateSampled(const SimConfig &config, const WorkloadInstance &w,
                const SimHooks &hooks,
                std::vector<SampleWindow> *windows_out)
{
    validateConfig(config);
    if (!config.sampling.enabled())
        fatal("simulateSampled: config '%s' has sampling disabled",
              config.label.c_str());
    if (!w.program || !w.mem)
        fatal("simulate: workload '%s' has no program/memory",
              w.name.c_str());
    if (hooks.commit) {
        ErrContext ctx;
        ctx.workload = w.name;
        ctx.config = config.label;
        throw simErrorf(ErrCode::ConfigInvalid, ctx,
                        "config '%s': sampling is incompatible with "
                        "per-commit hooks (lockstep validation needs "
                        "every commit; run without --sample-every)",
                        config.label.c_str());
    }

    const SamplingParams &sp = config.sampling;
    const WatchdogParams wd = resolveWatchdog(config);

    SimResult r;
    r.workload = w.name;
    r.config = config.label;
    r.sampled = true;

    Executor exec(*w.program, *w.mem);
    if (hooks.onExecutor)
        hooks.onExecutor(exec);

    // SVR predictor state carried window to window (warm SRAM).
    SvrEngineSnapshot svr_state;
    bool have_svr = false;

    MemCounters est;                   // whole-region counter estimates
    std::uint64_t est_l1_accesses = 0; // energy-model inputs
    std::uint64_t est_l2_accesses = 0;
    std::uint64_t llc_used[numPrefetchOrigins] = {};
    std::uint64_t llc_unused[numPrefetchOrigins] = {};
    std::vector<double> cpis;
    std::uint64_t done = 0;      //!< region instructions executed so far
    std::uint64_t measured = 0;  //!< instructions measured in detail
    std::uint64_t unsampled = 0; //!< executed under no window at all

    const auto t_start = std::chrono::steady_clock::now();
    while (done < config.maxInstructions && !exec.halted()) {
        const std::uint64_t period =
            std::min(sp.sampleEvery, config.maxInstructions - done);
        const std::uint64_t window_target = std::min(sp.sampleWindow, period);
        const std::uint64_t warmup_target =
            std::min(sp.warmup, period - window_target);
        const std::uint64_t ff_target =
            period - window_target - warmup_target;

        const std::uint64_t ffed = fastForward(exec, ff_target);
        done += ffed;
        if (ffed < ff_target || exec.halted()) {
            unsampled += ffed;
            break;
        }

        // Fresh timing state per window; the detailed warmup (not the
        // previous window's stale image) populates it.
        MemorySystem mem(config.mem);
        MemCounters at_measure; // all-zero == fresh-memory baseline
        MeasureWindow mw;
        mw.warmupInstrs = warmup_target;
        mw.onMeasureStart = [&] { at_measure = captureCounters(mem); };

        TimingWindow tw;
        tw.maxInstructions = warmup_target + window_target;
        tw.measure = warmup_target ? &mw : nullptr;
        tw.svrIn = have_svr ? &svr_state : nullptr;
        tw.svrOut = &svr_state;

        const std::uint64_t seq_before = exec.exportArchState().seq;
        const CoreStats ws =
            runTimingWindow(config, mem, exec, *w.mem, hooks, wd, tw);
        const std::uint64_t committed =
            exec.exportArchState().seq - seq_before;
        done += committed;
        have_svr = config.core == CoreType::Svr;

        if (ws.instructions == 0) {
            unsampled += committed;
            continue;
        }

        // Everything this period executed — fast-forward, warmup, and
        // the measured window itself — is represented by the window.
        const std::uint64_t represented = ffed + committed;
        const MemCounters delta = captureCounters(mem) - at_measure;

        r.core.cycles += scaled(ws.cycles, represented, ws.instructions);
        r.core.loads += scaled(ws.loads, represented, ws.instructions);
        r.core.stores += scaled(ws.stores, represented, ws.instructions);
        r.core.branches +=
            scaled(ws.branches, represented, ws.instructions);
        r.core.branchMispredicts +=
            scaled(ws.branchMispredicts, represented, ws.instructions);
        r.core.transientScalars +=
            scaled(ws.transientScalars, represented, ws.instructions);
        r.core.svrPrefetches +=
            scaled(ws.svrPrefetches, represented, ws.instructions);
        r.core.svrRounds +=
            scaled(ws.svrRounds, represented, ws.instructions);
        r.core.stackL2 += scaled(ws.stackL2, represented, ws.instructions);
        r.core.stackDram +=
            scaled(ws.stackDram, represented, ws.instructions);
        r.core.stackBranch +=
            scaled(ws.stackBranch, represented, ws.instructions);
        r.core.stackSvu +=
            scaled(ws.stackSvu, represented, ws.instructions);
        r.core.stackOther +=
            scaled(ws.stackOther, represented, ws.instructions);

        est.l1dHits += scaled(delta.l1dHits, represented, ws.instructions);
        est.l1dMisses +=
            scaled(delta.l1dMisses, represented, ws.instructions);
        est.l2Hits += scaled(delta.l2Hits, represented, ws.instructions);
        est.l2Misses +=
            scaled(delta.l2Misses, represented, ws.instructions);
        est.dramTransfers +=
            scaled(delta.dramTransfers, represented, ws.instructions);
        est.traffic.demandData +=
            scaled(delta.traffic.demandData, represented, ws.instructions);
        est.traffic.demandIfetch += scaled(delta.traffic.demandIfetch,
                                           represented, ws.instructions);
        est.traffic.prefStride +=
            scaled(delta.traffic.prefStride, represented, ws.instructions);
        est.traffic.prefSvr +=
            scaled(delta.traffic.prefSvr, represented, ws.instructions);
        est.traffic.prefImp +=
            scaled(delta.traffic.prefImp, represented, ws.instructions);
        est.traffic.writebacks +=
            scaled(delta.traffic.writebacks, represented, ws.instructions);
        est.tlbWalks += scaled(delta.tlbWalks, represented, ws.instructions);
        for (unsigned i = 0; i < numPrefetchOrigins; i++) {
            est.prefIssued[i] +=
                scaled(delta.prefIssued[i], represented, ws.instructions);
            llc_used[i] += delta.llcPrefFirstUse[i];
            llc_unused[i] += delta.llcPrefEvictedUnused[i];
        }
        est_l1_accesses +=
            scaled(delta.l1dHits + delta.l1dMisses + delta.l1iHits +
                       delta.l1iMisses,
                   represented, ws.instructions);
        est_l2_accesses += scaled(delta.l2Hits + delta.l2Misses,
                                  represented, ws.instructions);

        const double cpi = static_cast<double>(ws.cycles) /
                           static_cast<double>(ws.instructions);
        cpis.push_back(cpi);
        measured += ws.instructions;
        if (windows_out) {
            SampleWindow sw;
            sw.startInstruction = done - ws.instructions;
            sw.warmup = committed - ws.instructions;
            sw.measured = ws.instructions;
            sw.cycles = ws.cycles;
            sw.cpi = cpi;
            windows_out->push_back(sw);
        }
    }

    // A tail the program-halt cut off before any window could measure
    // it: extrapolate its cycles at the region's mean sampled CPI.
    if (unsampled > 0 && !cpis.empty()) {
        r.core.cycles += static_cast<std::uint64_t>(std::llround(
            arithmeticMean(cpis) * static_cast<double>(unsampled)));
    }

    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - t_start;
    r.hostMillis = elapsed.count();

    r.core.instructions = done; // exact, not an estimate
    r.sampleWindows = cpis.size();
    r.measuredInstructions = measured;
    r.cpiStderr =
        cpis.size() > 1
            ? sampleStdDev(cpis) / std::sqrt(static_cast<double>(cpis.size()))
            : 0.0;

    r.l1dHits = est.l1dHits;
    r.l1dMisses = est.l1dMisses;
    r.l2Hits = est.l2Hits;
    r.l2Misses = est.l2Misses;
    r.dramTransfers = est.dramTransfers;
    r.traffic = est.traffic;
    r.tlbWalks = est.tlbWalks;
    for (unsigned i = 0; i < numPrefetchOrigins; i++)
        r.prefIssued[i] = est.prefIssued[i];
    const auto idx = [](PrefetchOrigin o) {
        return static_cast<unsigned>(o);
    };
    r.svrAccuracyLlc = accuracyOf(llc_used[idx(PrefetchOrigin::Svr)],
                                  llc_unused[idx(PrefetchOrigin::Svr)]);
    r.impAccuracyLlc = accuracyOf(llc_used[idx(PrefetchOrigin::Imp)],
                                  llc_unused[idx(PrefetchOrigin::Imp)]);
    r.strideAccuracyLlc =
        accuracyOf(llc_used[idx(PrefetchOrigin::Stride)],
                   llc_unused[idx(PrefetchOrigin::Stride)]);

    const CoreKind kind = config.core == CoreType::OutOfOrder
                              ? CoreKind::OutOfOrder
                              : CoreKind::InOrder;
    MemEnergyEvents ev;
    ev.l1Accesses = est_l1_accesses;
    ev.l2Accesses = est_l2_accesses;
    ev.dramTransfers = est.dramTransfers;
    r.energy = computeEnergy(kind, config.core == CoreType::Svr, r.core, ev,
                             config.energy);
    return r;
}

} // namespace svr
