/**
 * @file
 * Sampled simulation (SimPoint-style systematic sampling): run most of
 * the region on the fast functional executor and only sample windows
 * in detailed timing, stitching the window measurements into a
 * whole-region estimate with an error bar. This is what makes
 * paper-scale regions (tens of millions of instructions) tractable:
 * the functional executor retires instructions orders of magnitude
 * faster than the timing cores.
 *
 * Each period of SamplingParams::sampleEvery committed instructions is
 * split into fast-forward, detailed warmup (full timing over a fresh
 * memory system — warming caches, branch predictors, TLBs, and the
 * SVR predictor SRAMs — excluded from the stats via core/measure.hh),
 * and the measured window. SVR predictor state is carried between
 * windows with SvrEngine::exportState()/importState(), mirroring the
 * warm SRAM a real sampled machine would retain.
 *
 * Degenerate configurations collapse exactly: when sampleEvery and
 * sampleWindow both cover the whole region, the single "sample" is an
 * ordinary full-detail run and every counter matches simulate() with
 * sampling off bit for bit (asserted by tests/test_sampled_sim.cc).
 */

#ifndef SVR_SIM_SAMPLED_SIM_HH
#define SVR_SIM_SAMPLED_SIM_HH

#include <cstdint>
#include <vector>

#include "sim/simulator.hh"

namespace svr
{

/** One measured timing window (diagnostics and tests). */
struct SampleWindow
{
    /** Region offset of the first *measured* instruction. */
    std::uint64_t startInstruction = 0;
    std::uint64_t warmup = 0;   //!< detailed-warmup instructions run
    std::uint64_t measured = 0; //!< instructions measured
    Cycle cycles = 0;           //!< cycles over the measured part
    double cpi = 0.0;
};

/**
 * Advance @p exec by up to @p n instructions functionally (no timing).
 * Returns the number actually stepped (short when the program halts).
 */
std::uint64_t fastForward(Executor &exec, std::uint64_t n);

/**
 * Run @p config on @p w with sampling (config.sampling must be
 * enabled; simulate() dispatches here automatically). The returned
 * SimResult carries whole-region estimates: instructions is exact,
 * every other counter is stitched from the windows, and
 * sampled/sampleWindows/measuredInstructions/cpiStderr describe the
 * estimate. A commit hook in @p hooks is rejected with
 * SimError(ConfigInvalid): lockstep validation needs every commit,
 * which sampling by construction skips. @p windows_out, when non-null,
 * receives the per-window measurements.
 */
SimResult simulateSampled(const SimConfig &config, const WorkloadInstance &w,
                          const SimHooks &hooks = {},
                          std::vector<SampleWindow> *windows_out = nullptr);

} // namespace svr

#endif // SVR_SIM_SAMPLED_SIM_HH
