#include "sim/checkpoint.hh"

#include <cstring>

#include "common/error.hh"
#include "common/io.hh"

namespace svr
{

namespace
{

/** Format tag: bump the trailing digits on any layout change. */
constexpr char magic[8] = {'S', 'V', 'R', 'C', 'K', 'P', '0', '1'};

/** Little-endian byte writer over a growing string. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::string &sink) : out(sink) {}

    void
    u8(std::uint8_t v)
    {
        out.push_back(static_cast<char>(v));
    }

    void
    u16(std::uint16_t v)
    {
        for (unsigned i = 0; i < 2; i++)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u32(std::uint32_t v)
    {
        for (unsigned i = 0; i < 4; i++)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; i++)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    bytes(const void *data, std::size_t n)
    {
        out.append(static_cast<const char *>(data), n);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }

  private:
    std::string &out;
};

[[noreturn]] void
corrupt(const char *what)
{
    throw SimError(ErrCode::IoError,
                   std::string("checkpoint: ") + what);
}

/** Bounds-checked little-endian reader; throws IoError on truncation. */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view bytes) : in(bytes) {}

    std::uint8_t
    u8()
    {
        if (pos >= in.size())
            corrupt("truncated");
        return static_cast<std::uint8_t>(in[pos++]);
    }

    std::uint16_t
    u16()
    {
        std::uint16_t v = 0;
        for (unsigned i = 0; i < 2; i++)
            v |= static_cast<std::uint16_t>(u8()) << (8 * i);
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 4; i++)
            v |= static_cast<std::uint32_t>(u8()) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 8; i++)
            v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    bool
    flag()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            corrupt("bad boolean field");
        return v != 0;
    }

    void
    bytes(void *dst, std::size_t n)
    {
        if (n > in.size() - pos)
            corrupt("truncated");
        std::memcpy(dst, in.data() + pos, n);
        pos += n;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (n > in.size() - pos)
            corrupt("truncated");
        std::string s(in.substr(pos, n));
        pos += n;
        return s;
    }

    bool done() const { return pos == in.size(); }

  private:
    std::string_view in;
    std::size_t pos = 0;
};

void
putStrideEntry(ByteWriter &w, const StrideEntry &e)
{
    w.u64(e.pc);
    w.u8(e.valid);
    w.u64(e.prevAddress);
    w.i64(e.stride);
    w.u32(e.satCounter);
    w.u64(e.lastPrefetch);
    w.u8(e.hasLastPrefetch);
    w.u8(e.seen);
    w.u16(e.lil);
    w.u32(e.lilConfidence);
    w.u8(e.hasLil);
    w.u32(e.uselessRounds);
    w.u64(e.lastUse);
}

StrideEntry
getStrideEntry(ByteReader &r)
{
    StrideEntry e;
    e.pc = r.u64();
    e.valid = r.flag();
    e.prevAddress = r.u64();
    e.stride = r.i64();
    e.satCounter = r.u32();
    e.lastPrefetch = r.u64();
    e.hasLastPrefetch = r.flag();
    e.seen = r.flag();
    e.lil = r.u16();
    e.lilConfidence = r.u32();
    e.hasLil = r.flag();
    e.uselessRounds = r.u32();
    e.lastUse = r.u64();
    return e;
}

} // namespace

Checkpoint
captureCheckpoint(const Executor &exec, const FunctionalMemory &mem,
                  std::string workload_name, const SvrEngine *engine)
{
    Checkpoint ck;
    ck.workload = std::move(workload_name);
    ck.arch = exec.exportArchState();
    ck.instructions = ck.arch.seq;
    ck.allocTop = mem.allocTop();
    const auto pages = mem.snapshotPages();
    ck.pages.resize(pages.size());
    for (std::size_t i = 0; i < pages.size(); i++) {
        ck.pages[i].pageNum = pages[i].pageNum;
        std::memcpy(ck.pages[i].data.data(), pages[i].data, pageBytes);
    }
    if (engine) {
        ck.hasSvr = true;
        ck.svr = engine->exportState();
    }
    return ck;
}

void
restoreCheckpoint(const Checkpoint &ck, Executor &exec,
                  FunctionalMemory &mem)
{
    mem.clear();
    for (const CheckpointPage &page : ck.pages)
        mem.installPage(page.pageNum, page.data.data());
    mem.setAllocTop(ck.allocTop);
    exec.importArchState(ck.arch);
}

std::string
serializeCheckpoint(const Checkpoint &ck)
{
    std::string out;
    // Header + arch state is ~300 bytes; pages dominate.
    out.reserve(sizeof(magic) + 320 + ck.pages.size() * (pageBytes + 8));
    ByteWriter w(out);
    w.bytes(magic, sizeof(magic));
    w.str(ck.workload);
    w.u64(ck.instructions);
    for (RegVal reg : ck.arch.regs)
        w.u64(reg);
    w.u8(ck.arch.flags.eq);
    w.u8(ck.arch.flags.lt);
    w.u8(ck.arch.flags.ltu);
    w.u64(ck.arch.pcIndex);
    w.u8(ck.arch.halted);
    w.u64(ck.arch.seq);
    w.u64(ck.allocTop);
    w.u64(ck.pages.size());
    for (const CheckpointPage &page : ck.pages) {
        w.u64(page.pageNum);
        w.bytes(page.data.data(), pageBytes);
    }
    w.u8(ck.hasSvr);
    if (ck.hasSvr) {
        w.u32(static_cast<std::uint32_t>(ck.svr.strideEntries.size()));
        for (const StrideEntry &e : ck.svr.strideEntries)
            putStrideEntry(w, e);
        w.u64(ck.svr.strideClock);
        w.u8(ck.svr.governorBanned);
    }
    return out;
}

Checkpoint
deserializeCheckpoint(std::string_view bytes)
{
    ByteReader r(bytes);
    char tag[sizeof(magic)];
    r.bytes(tag, sizeof(tag));
    if (std::memcmp(tag, magic, sizeof(magic)) != 0)
        corrupt("bad magic (not a checkpoint, or a newer format)");

    Checkpoint ck;
    ck.workload = r.str();
    ck.instructions = r.u64();
    for (RegVal &reg : ck.arch.regs)
        reg = r.u64();
    ck.arch.flags.eq = r.flag();
    ck.arch.flags.lt = r.flag();
    ck.arch.flags.ltu = r.flag();
    ck.arch.pcIndex = r.u64();
    ck.arch.halted = r.flag();
    ck.arch.seq = r.u64();
    ck.allocTop = r.u64();

    const std::uint64_t num_pages = r.u64();
    // Each page needs pageBytes + 8 bytes of input: a count that can't
    // possibly fit is corruption, not a huge allocation request.
    if (num_pages > bytes.size() / pageBytes + 1)
        corrupt("page count exceeds payload");
    ck.pages.resize(static_cast<std::size_t>(num_pages));
    Addr prev_page = 0;
    for (std::size_t i = 0; i < ck.pages.size(); i++) {
        ck.pages[i].pageNum = r.u64();
        if (i > 0 && ck.pages[i].pageNum <= prev_page)
            corrupt("page numbers not strictly increasing");
        prev_page = ck.pages[i].pageNum;
        r.bytes(ck.pages[i].data.data(), pageBytes);
    }

    ck.hasSvr = r.flag();
    if (ck.hasSvr) {
        const std::uint32_t entries = r.u32();
        if (entries > bytes.size())
            corrupt("stride-entry count exceeds payload");
        ck.svr.strideEntries.resize(entries);
        for (StrideEntry &e : ck.svr.strideEntries)
            e = getStrideEntry(r);
        ck.svr.strideClock = r.u64();
        ck.svr.governorBanned = r.flag();
    }
    if (!r.done())
        corrupt("trailing bytes after checkpoint payload");
    return ck;
}

void
saveCheckpoint(const Checkpoint &ck, const std::string &path)
{
    writeFileAtomic(path, serializeCheckpoint(ck));
}

Checkpoint
loadCheckpoint(const std::string &path)
{
    return deserializeCheckpoint(readFile(path));
}

} // namespace svr
