/**
 * @file
 * Top-level simulation configurations and the Table III presets.
 */

#ifndef SVR_SIM_CONFIG_HH
#define SVR_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "core/inorder_core.hh"
#include "core/ooo_core.hh"
#include "core/watchdog.hh"
#include "energy/energy_model.hh"
#include "imp/imp_prefetcher.hh"
#include "mem/memory_system.hh"
#include "svr/svr_engine.hh"

namespace svr
{

/** Which machine to simulate. */
enum class CoreType : std::uint8_t
{
    InOrder,    //!< baseline 3-wide stall-on-use in-order (A510-like)
    InOrderImp, //!< in-order + IMP prefetcher at the L1D
    OutOfOrder, //!< matched 3-wide OoO (ROB 32 / RS 32 / LSQ 16)
    Svr,        //!< in-order + Scalar Vector Runahead
};

/** Printable core-type name. */
const char *coreTypeName(CoreType t);

/**
 * Sampled-simulation knobs (SimPoint-style systematic sampling).
 * Disabled by default (sampleEvery == 0): the whole region runs in
 * detailed timing. When enabled, each period of sampleEvery committed
 * instructions runs (period - warmup - window) instructions on the
 * fast functional executor, then warmup instructions of detailed
 * timing that are excluded from the stats (warming caches, branch
 * predictors, TLBs, and the SVR engine), then a measured timing
 * window; per-window CPIs are stitched into a whole-region estimate
 * with a standard error (see sim/sampled_sim.hh).
 */
struct SamplingParams
{
    std::uint64_t sampleEvery = 0;  //!< sampling period; 0 = off
    std::uint64_t sampleWindow = 0; //!< measured instructions per period
    std::uint64_t warmup = 0;       //!< detailed-warmup instructions

    bool enabled() const { return sampleEvery != 0; }
};

/** A complete machine configuration. */
struct SimConfig
{
    std::string label;          //!< display name (e.g. "SVR16")
    CoreType core = CoreType::InOrder;
    InOrderParams inorder;
    OoOParams ooo;
    MemParams mem;
    SvrParams svr;
    ImpParams imp;
    EnergyParams energy;
    std::uint64_t maxInstructions = 400000;
    SamplingParams sampling;

    /**
     * Watchdog budgets. At this level 0 means "auto": simulate()
     * derives a generous cycle budget from maxInstructions and a
     * fixed stall budget. Use watchdogOff to disable a check
     * entirely (e.g. single-run debugging of a pathological config).
     */
    WatchdogParams watchdog;
};

/**
 * Reject degenerate configurations (zero-instruction windows, zero
 * cache geometry, zero SVR resources, zero DRAM bandwidth, ...) with
 * SimError(ConfigInvalid) before a run starts. simulate() calls this
 * on every config; tools may call it early for fail-fast CLI checks.
 */
void validateConfig(const SimConfig &config);

namespace presets
{

/** Baseline in-order core (Table III, column 1). */
SimConfig inorder();

/** In-order core with the IMP prefetcher. */
SimConfig impCore();

/** Out-of-order core (Table III, column 3). */
SimConfig outOfOrder();

/** SVR with vector length @p n (Table III, column 2; default N=16). */
SimConfig svrCore(unsigned n = 16);

/**
 * Parse a preset name as used by the sweep tools: "ino", "imp",
 * "ooo", or "svrN" with numeric N >= 1 (e.g. "svr16"). Calls fatal()
 * on anything else — including malformed svr widths like "svr",
 * "svrx", or "svr0" — instead of leaking std::invalid_argument.
 */
SimConfig byName(const std::string &name);

/**
 * Simulation window length, overridable with the SVR_WINDOW
 * environment variable (instructions per run; default 400000).
 */
std::uint64_t simWindow();

} // namespace presets

} // namespace svr

#endif // SVR_SIM_CONFIG_HH
