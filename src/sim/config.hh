/**
 * @file
 * Top-level simulation configurations and the Table III presets.
 */

#ifndef SVR_SIM_CONFIG_HH
#define SVR_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "core/inorder_core.hh"
#include "core/ooo_core.hh"
#include "core/watchdog.hh"
#include "energy/energy_model.hh"
#include "imp/imp_prefetcher.hh"
#include "mem/memory_system.hh"
#include "svr/svr_engine.hh"

namespace svr
{

/** Which machine to simulate. */
enum class CoreType : std::uint8_t
{
    InOrder,    //!< baseline 3-wide stall-on-use in-order (A510-like)
    InOrderImp, //!< in-order + IMP prefetcher at the L1D
    OutOfOrder, //!< matched 3-wide OoO (ROB 32 / RS 32 / LSQ 16)
    Svr,        //!< in-order + Scalar Vector Runahead
};

/** Printable core-type name. */
const char *coreTypeName(CoreType t);

/** A complete machine configuration. */
struct SimConfig
{
    std::string label;          //!< display name (e.g. "SVR16")
    CoreType core = CoreType::InOrder;
    InOrderParams inorder;
    OoOParams ooo;
    MemParams mem;
    SvrParams svr;
    ImpParams imp;
    EnergyParams energy;
    std::uint64_t maxInstructions = 400000;

    /**
     * Watchdog budgets. At this level 0 means "auto": simulate()
     * derives a generous cycle budget from maxInstructions and a
     * fixed stall budget. Use watchdogOff to disable a check
     * entirely (e.g. single-run debugging of a pathological config).
     */
    WatchdogParams watchdog;
};

/**
 * Reject degenerate configurations (zero-instruction windows, zero
 * cache geometry, zero SVR resources, zero DRAM bandwidth, ...) with
 * SimError(ConfigInvalid) before a run starts. simulate() calls this
 * on every config; tools may call it early for fail-fast CLI checks.
 */
void validateConfig(const SimConfig &config);

namespace presets
{

/** Baseline in-order core (Table III, column 1). */
SimConfig inorder();

/** In-order core with the IMP prefetcher. */
SimConfig impCore();

/** Out-of-order core (Table III, column 3). */
SimConfig outOfOrder();

/** SVR with vector length @p n (Table III, column 2; default N=16). */
SimConfig svrCore(unsigned n = 16);

/**
 * Parse a preset name as used by the sweep tools: "ino", "imp",
 * "ooo", or "svrN" with numeric N >= 1 (e.g. "svr16"). Calls fatal()
 * on anything else — including malformed svr widths like "svr",
 * "svrx", or "svr0" — instead of leaking std::invalid_argument.
 */
SimConfig byName(const std::string &name);

/**
 * Simulation window length, overridable with the SVR_WINDOW
 * environment variable (instructions per run; default 400000).
 */
std::uint64_t simWindow();

} // namespace presets

} // namespace svr

#endif // SVR_SIM_CONFIG_HH
