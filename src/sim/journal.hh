/**
 * @file
 * Crash-safe sweep journal. A sweep appends one record per completed
 * cell to "<out>.journal" (flushed immediately), so a killed run can
 * be resumed with --resume: already-journaled cells are restored
 * instead of re-simulated, and the final artifact is byte-identical
 * to an uninterrupted run because every SimResult field that reaches
 * the reports round-trips exactly (integers verbatim, doubles as
 * %.17g).
 *
 * Format (plain text, one record per line):
 *   line 1:  "J1 <suite> <configs> <window> <seed>[ <sampling>]" —
 *            sweep identity; --resume refuses a journal whose identity
 *            differs. The sampling token (every/window/warmup) only
 *            appears for sampled sweeps, so non-sampled journals stay
 *            byte-identical to the original format.
 *   others:  "R1 <fixed-order fields> <errMessage...>" — one completed
 *            cell; strings are %-escaped, errMessage is the
 *            rest-of-line. Sampled cells are "R2" records: the same
 *            fields plus sample_windows/measured_instructions/
 *            cpi_stderr before errMessage.
 * A torn final line (crash mid-append) is ignored on load.
 */

#ifndef SVR_SIM_JOURNAL_HH
#define SVR_SIM_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hh"

namespace svr
{

/** Identity of one sweep, for journal/resume compatibility checks. */
struct SweepKey
{
    std::string suite;   //!< workload suite name
    std::string configs; //!< comma-joined config list as given
    std::uint64_t window = 0;
    std::uint64_t seed = 0;
    /**
     * Sampling identity, "every/window/warmup" (e.g. "1000000/40000/
     * 20000"); empty for full-detail sweeps. Part of the resume
     * compatibility check: a journal written with different sampling
     * parameters holds incomparable numbers and is rejected.
     */
    std::string sampling;

    bool
    operator==(const SweepKey &o) const
    {
        return suite == o.suite && configs == o.configs &&
               window == o.window && seed == o.seed &&
               sampling == o.sampling;
    }
};

/** Completed cells keyed by (workload, config). */
using JournalCells =
    std::map<std::pair<std::string, std::string>, SimResult>;

/** Serialize one cell as an "R1 ..." line (no trailing newline). */
std::string journalLine(const SimResult &r);

/**
 * %-escape a value so it travels as one whitespace-free token ("-"
 * encodes the empty string) — the token format shared by journal
 * records and the fabric wire messages (sim/fabric.hh).
 */
std::string journalEscape(const std::string &s);

/** Invert journalEscape(). */
std::string journalUnescape(const std::string &s);

/**
 * Parse one "R1 ..." line. Returns false on a torn/corrupt line
 * (callers skip it) — never throws.
 */
bool parseJournalLine(const std::string &line, SimResult &out);

/**
 * Append-only journal writer: opens @p path (creating it with a "J1"
 * header when new or empty), then append() writes one record and
 * flushes so a SIGKILL loses at most the in-flight line. With
 * @p fsync_each the record is also fsync()ed to the device before
 * append() returns, extending the guarantee from "survives process
 * death" to "survives power loss" at a per-record latency cost
 * (--journal-fsync in the sweep tool). All IO failures — short
 * writes, ENOSPC, a failed fsync — throw SimError(IoError).
 */
class SweepJournal
{
  public:
    SweepJournal(const std::string &path, const SweepKey &key,
                 bool fsync_each = false);
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    void append(const SimResult &r);

    const std::string &path() const { return journalPath; }

  private:
    std::string journalPath;
    std::FILE *file = nullptr;
    bool fsyncEach = false;
};

/**
 * Load the completed cells of an existing journal at @p path. Throws
 * SimError(IoError) when the file cannot be read and
 * SimError(ConfigInvalid) when its header does not match @p expect
 * (resuming a different sweep would silently mix results). Torn or
 * corrupt record lines are skipped with a warn().
 */
JournalCells loadJournal(const std::string &path, const SweepKey &expect);

/**
 * Merge several journal shards (e.g. shipped from workers that
 * journaled locally on other hosts) into one completed-cell map.
 * Every shard must carry the same sweep identity @p expect; cells
 * appearing in more than one shard are identical by the determinism
 * contract (same cell => same seeded stream => same record), so the
 * first occurrence wins and duplicates are counted, not compared.
 * Returns the union; @p duplicates (optional) receives the number of
 * duplicate records dropped.
 */
JournalCells loadJournalShards(const std::vector<std::string> &paths,
                               const SweepKey &expect,
                               std::size_t *duplicates = nullptr);

} // namespace svr

#endif // SVR_SIM_JOURNAL_HH
