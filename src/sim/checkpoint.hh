/**
 * @file
 * Restorable simulation checkpoints. A Checkpoint captures everything
 * the functional machine needs to resume a workload mid-region: the
 * full architectural state (registers, flags, PC, halt flag, sequence
 * number), the sparse functional-memory image (every materialized
 * page plus the bump-allocator cursor), and optionally the SVR
 * engine's persistent predictor state (stride-detector SRAM +
 * governor ban). Checkpoints serialize to a versioned little-endian
 * byte format; deserialization validates the magic, version, and
 * exact length, throwing SimError(IoError) on any corruption, so a
 * truncated or bit-flipped artifact can never silently restore into a
 * wrong machine state.
 *
 * Restoring reconstructs the machine bit-identically: a run that is
 * checkpointed at instruction N and resumed produces exactly the same
 * architectural trajectory as an uninterrupted run (the checkpoint
 * round-trip property, enforced by tests/test_checkpoint.cc).
 */

#ifndef SVR_SIM_CHECKPOINT_HH
#define SVR_SIM_CHECKPOINT_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"
#include "core/executor.hh"
#include "mem/functional_memory.hh"
#include "svr/svr_engine.hh"

namespace svr
{

/** One checkpointed 4 KiB page (owning copy, unlike PageRef). */
struct CheckpointPage
{
    Addr pageNum = 0;
    std::array<std::uint8_t, pageBytes> data{};
};

/**
 * A restorable snapshot of the functional machine. Plain data:
 * capture/restore/serialize are free functions below.
 */
struct Checkpoint
{
    /** Workload instance name, as a restore-time sanity tag. */
    std::string workload;

    /** Committed instructions at capture time (== arch.seq). */
    std::uint64_t instructions = 0;

    ExecArchState arch;
    Addr allocTop = 0;
    std::vector<CheckpointPage> pages; //!< sorted by pageNum

    bool hasSvr = false;
    SvrEngineSnapshot svr; //!< meaningful only when hasSvr
};

/**
 * Capture the current machine state. @p engine, when non-null, adds
 * the SVR predictor snapshot (engine must not be mid-round).
 */
Checkpoint captureCheckpoint(const Executor &exec,
                             const FunctionalMemory &mem,
                             std::string workload_name,
                             const SvrEngine *engine = nullptr);

/**
 * Restore @p ck into @p exec / @p mem: memory is cleared and rebuilt
 * from the page images, the allocator cursor and architectural state
 * are reinstated. The executor must have been built over the same
 * program the checkpoint was captured from (PC bounds are validated).
 */
void restoreCheckpoint(const Checkpoint &ck, Executor &exec,
                       FunctionalMemory &mem);

/** Serialize to the versioned byte format (deterministic). */
std::string serializeCheckpoint(const Checkpoint &ck);

/**
 * Parse serializeCheckpoint() output. Throws SimError(IoError) on bad
 * magic/version, truncation, or trailing garbage.
 */
Checkpoint deserializeCheckpoint(std::string_view bytes);

/** Atomically write the serialized checkpoint to @p path. */
void saveCheckpoint(const Checkpoint &ck, const std::string &path);

/** Read and deserialize a checkpoint file (SimError(IoError) on failure). */
Checkpoint loadCheckpoint(const std::string &path);

} // namespace svr

#endif // SVR_SIM_CHECKPOINT_HH
