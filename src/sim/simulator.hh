/**
 * @file
 * The top-level simulator: wires a workload instance to a configured
 * machine, runs the timing window, and collects all per-run metrics
 * (core stats, cache/DRAM counters, prefetch effectiveness, energy).
 */

#ifndef SVR_SIM_SIMULATOR_HH
#define SVR_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <string>

#include "core/core_stats.hh"
#include "energy/energy_model.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace svr
{

class CommitHook;
class Executor;
class SvrEngine;

/**
 * Observation hooks into one simulation run (debug/verification
 * tooling; see analysis/archcheck.hh for the main client). All
 * members are optional. The commit hook only fires in SVR_ARCHCHECK
 * builds — in Release it is attached but never called.
 */
struct SimHooks
{
    /** Per-committed-instruction observer (not owned). */
    CommitHook *commit = nullptr;
    /** Called once with the run's executor, before the timing loop. */
    std::function<void(const Executor &)> onExecutor;
    /** Called once with the SVR engine (CoreType::Svr runs only). */
    std::function<void(const SvrEngine &)> onSvrEngine;
};

/** Everything measured in one simulation run. */
struct SimResult
{
    std::string workload;
    std::string config;

    CoreStats core;

    // Memory-side counters.
    std::uint64_t l1dHits = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramTransfers = 0;
    DramTraffic traffic;
    std::uint64_t tlbWalks = 0;

    // Prefetch effectiveness (Figure 13).
    std::uint64_t prefIssued[numPrefetchOrigins] = {}; //!< by PrefetchOrigin
    double svrAccuracyLlc = 1.0;
    double impAccuracyLlc = 1.0;
    double strideAccuracyLlc = 1.0;

    EnergyBreakdown energy;

    /**
     * Failure record. A cell that threw a SimError under --keep-going
     * is recorded here instead of aborting the sweep: failed=true,
     * errCode/errMessage carry the structured error, attempts counts
     * how many tries the engine made. All three are deterministic
     * (the message never embeds host data), so failed cells are part
     * of the bit-identical-output contract like everything else.
     */
    bool failed = false;
    std::string errCode;    //!< errCodeName() of the SimError
    std::string errMessage; //!< decorated what() text
    unsigned attempts = 1;  //!< simulation attempts for this cell

    /**
     * Host wall-clock time spent inside the timing loop [ms]. Host-
     * side measurement only: deliberately kept out of toJson()/csv
     * reports, whose byte-identity across job counts is a test
     * invariant (see tests/test_parallel_experiment.cc).
     */
    double hostMillis = 0.0;

    double ipc() const { return core.ipc(); }
    double cpi() const { return core.cpi(); }
    /** Simulated instructions per host second, in millions. */
    double
    hostMsimips() const
    {
        return hostMillis > 0.0
                   ? static_cast<double>(core.instructions) /
                         (hostMillis * 1e3)
                   : 0.0;
    }
    /** Whole-system energy per committed instruction [nJ]. */
    double energyPerInstr() const
    {
        return energy.perInstrNJ(core.instructions);
    }
};

/** Run @p config on @p workload (fresh instance) and measure. */
SimResult simulate(const SimConfig &config, const WorkloadInstance &w);

/** As above, with observation hooks attached to the run. */
SimResult simulate(const SimConfig &config, const WorkloadInstance &w,
                   const SimHooks &hooks);

/** Convenience: build a fresh instance from @p spec and simulate. */
SimResult simulate(const SimConfig &config, const WorkloadSpec &spec);

/**
 * Fault-injection hook (hang@ rules): run the cell with a
 * deliberately livelocked runahead engine attached, so the
 * forward-progress watchdog must trip. Always throws
 * SimError(NoForwardProgress) — or CycleBudgetExceeded if the stall
 * check was disabled — unless the watchdog is fully off, in which
 * case it panics (an injected hang must never complete).
 */
SimResult simulateInjectedHang(const SimConfig &config,
                               const WorkloadInstance &w);

} // namespace svr

#endif // SVR_SIM_SIMULATOR_HH
