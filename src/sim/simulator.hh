/**
 * @file
 * The top-level simulator: wires a workload instance to a configured
 * machine, runs the timing window, and collects all per-run metrics
 * (core stats, cache/DRAM counters, prefetch effectiveness, energy).
 */

#ifndef SVR_SIM_SIMULATOR_HH
#define SVR_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>

#include "core/core_stats.hh"
#include "energy/energy_model.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace svr
{

/** Everything measured in one simulation run. */
struct SimResult
{
    std::string workload;
    std::string config;

    CoreStats core;

    // Memory-side counters.
    std::uint64_t l1dHits = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramTransfers = 0;
    DramTraffic traffic;
    std::uint64_t tlbWalks = 0;

    // Prefetch effectiveness (Figure 13).
    std::uint64_t prefIssued[numPrefetchOrigins] = {}; //!< by PrefetchOrigin
    double svrAccuracyLlc = 1.0;
    double impAccuracyLlc = 1.0;
    double strideAccuracyLlc = 1.0;

    EnergyBreakdown energy;

    /**
     * Host wall-clock time spent inside the timing loop [ms]. Host-
     * side measurement only: deliberately kept out of toJson()/csv
     * reports, whose byte-identity across job counts is a test
     * invariant (see tests/test_parallel_experiment.cc).
     */
    double hostMillis = 0.0;

    double ipc() const { return core.ipc(); }
    double cpi() const { return core.cpi(); }
    /** Simulated instructions per host second, in millions. */
    double
    hostMsimips() const
    {
        return hostMillis > 0.0
                   ? static_cast<double>(core.instructions) /
                         (hostMillis * 1e3)
                   : 0.0;
    }
    /** Whole-system energy per committed instruction [nJ]. */
    double energyPerInstr() const
    {
        return energy.perInstrNJ(core.instructions);
    }
};

/** Run @p config on @p workload (fresh instance) and measure. */
SimResult simulate(const SimConfig &config, const WorkloadInstance &w);

/** Convenience: build a fresh instance from @p spec and simulate. */
SimResult simulate(const SimConfig &config, const WorkloadSpec &spec);

} // namespace svr

#endif // SVR_SIM_SIMULATOR_HH
