/**
 * @file
 * The top-level simulator: wires a workload instance to a configured
 * machine, runs the timing window, and collects all per-run metrics
 * (core stats, cache/DRAM counters, prefetch effectiveness, energy).
 */

#ifndef SVR_SIM_SIMULATOR_HH
#define SVR_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <string>

#include "core/core_stats.hh"
#include "core/measure.hh"
#include "energy/energy_model.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace svr
{

class CommitHook;
class Executor;
class FunctionalMemory;
class SvrEngine;
struct SvrEngineSnapshot;

/**
 * Observation hooks into one simulation run (debug/verification
 * tooling; see analysis/archcheck.hh for the main client). All
 * members are optional. The commit hook only fires in SVR_ARCHCHECK
 * builds — in Release it is attached but never called.
 */
struct SimHooks
{
    /** Per-committed-instruction observer (not owned). */
    CommitHook *commit = nullptr;
    /** Called once with the run's executor, before the timing loop. */
    std::function<void(const Executor &)> onExecutor;
    /** Called once with the SVR engine (CoreType::Svr runs only). */
    std::function<void(const SvrEngine &)> onSvrEngine;
    /**
     * Called with the SVR engine after each timing segment completes,
     * before the engine is torn down (CoreType::Svr runs only) — the
     * hook for run-end observations like the chain log.
     */
    std::function<void(const SvrEngine &)> onSvrEngineDone;
};

/** Everything measured in one simulation run. */
struct SimResult
{
    std::string workload;
    std::string config;

    CoreStats core;

    // Memory-side counters.
    std::uint64_t l1dHits = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramTransfers = 0;
    DramTraffic traffic;
    std::uint64_t tlbWalks = 0;

    // Prefetch effectiveness (Figure 13).
    std::uint64_t prefIssued[numPrefetchOrigins] = {}; //!< by PrefetchOrigin
    double svrAccuracyLlc = 1.0;
    double impAccuracyLlc = 1.0;
    double strideAccuracyLlc = 1.0;

    EnergyBreakdown energy;

    /**
     * Failure record. A cell that threw a SimError under --keep-going
     * is recorded here instead of aborting the sweep: failed=true,
     * errCode/errMessage carry the structured error, attempts counts
     * how many tries the engine made. All three are deterministic
     * (the message never embeds host data), so failed cells are part
     * of the bit-identical-output contract like everything else.
     */
    bool failed = false;
    std::string errCode;    //!< errCodeName() of the SimError
    std::string errMessage; //!< decorated what() text
    unsigned attempts = 1;  //!< simulation attempts for this cell

    /**
     * Sampled-simulation provenance. When SamplingParams was enabled
     * the counters above are whole-region *estimates* stitched from
     * the timing windows (instructions stays exact), and these fields
     * describe the estimate. All four stay at their defaults on a
     * full-detail run, and the JSON/CSV reports only mention sampling
     * when sampled is true, keeping non-sampled artifacts byte-
     * identical to what they were before sampling existed.
     */
    bool sampled = false;
    std::uint64_t sampleWindows = 0;        //!< timing windows measured
    std::uint64_t measuredInstructions = 0; //!< instrs in those windows
    double cpiStderr = 0.0; //!< standard error of the per-window CPIs

    /**
     * Host wall-clock time spent inside the timing loop [ms]. Host-
     * side measurement only: deliberately kept out of toJson()/csv
     * reports, whose byte-identity across job counts is a test
     * invariant (see tests/test_parallel_experiment.cc).
     */
    double hostMillis = 0.0;

    double ipc() const { return core.ipc(); }
    double cpi() const { return core.cpi(); }
    /** Simulated instructions per host second, in millions. */
    double
    hostMsimips() const
    {
        return hostMillis > 0.0
                   ? static_cast<double>(core.instructions) /
                         (hostMillis * 1e3)
                   : 0.0;
    }
    /** Whole-system energy per committed instruction [nJ]. */
    double energyPerInstr() const
    {
        return energy.perInstrNJ(core.instructions);
    }
};

/**
 * Resolve SimConfig-level watchdog budgets (0 = auto, watchdogOff =
 * disabled) into concrete core-level params (0 = disabled).
 */
WatchdogParams resolveWatchdog(const SimConfig &config);

/**
 * One detailed-timing segment over an already-positioned machine.
 * simulate() runs exactly one covering the whole region; the sampled
 * driver (sim/sampled_sim.hh) runs one per sample period.
 */
struct TimingWindow
{
    /** Instructions to commit, *including* any warmup. */
    std::uint64_t maxInstructions = 0;

    /** Optional warmup/measure split (see core/measure.hh). */
    const MeasureWindow *measure = nullptr;

    /**
     * SVR predictor state carried across windows (CoreType::Svr only):
     * svrIn warms the freshly built engine before the run, svrOut
     * receives its state afterwards. Either may be null.
     */
    const SvrEngineSnapshot *svrIn = nullptr;
    SvrEngineSnapshot *svrOut = nullptr;
};

/**
 * Build the configured core (plus SVR engine / IMP prefetcher) over
 * @p mem and run one timing segment on @p exec from its current
 * position. @p fmem is the workload's functional memory (value source
 * for IMP). Returns the segment's core stats (rebaselined when
 * window.measure has a warmup).
 */
CoreStats runTimingWindow(const SimConfig &config, MemorySystem &mem,
                          Executor &exec, FunctionalMemory &fmem,
                          const SimHooks &hooks, const WatchdogParams &wd,
                          const TimingWindow &window);

/** Run @p config on @p workload (fresh instance) and measure. */
SimResult simulate(const SimConfig &config, const WorkloadInstance &w);

/** As above, with observation hooks attached to the run. */
SimResult simulate(const SimConfig &config, const WorkloadInstance &w,
                   const SimHooks &hooks);

/** Convenience: build a fresh instance from @p spec and simulate. */
SimResult simulate(const SimConfig &config, const WorkloadSpec &spec);

/**
 * Fault-injection hook (hang@ rules): run the cell with a
 * deliberately livelocked runahead engine attached, so the
 * forward-progress watchdog must trip. Always throws
 * SimError(NoForwardProgress) — or CycleBudgetExceeded if the stall
 * check was disabled — unless the watchdog is fully off, in which
 * case it panics (an injected hang must never complete).
 */
SimResult simulateInjectedHang(const SimConfig &config,
                               const WorkloadInstance &w);

} // namespace svr

#endif // SVR_SIM_SIMULATOR_HH
