#include "sim/report.hh"

#include <sstream>

namespace svr
{

namespace
{

/** Minimal JSON string escaping (names are ASCII identifiers here). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
            break;
        }
    }
    return out;
}

void
emitResult(std::ostringstream &os, const SimResult &r,
           const std::string &indent)
{
    const std::string in2 = indent + "  ";
    os << indent << "{\n";
    os << in2 << "\"workload\": \"" << jsonEscape(r.workload) << "\",\n";
    os << in2 << "\"config\": \"" << jsonEscape(r.config) << "\",\n";
    os << in2 << "\"status\": \"" << (r.failed ? "failed" : "ok")
       << "\",\n";
    os << in2 << "\"attempts\": " << r.attempts << ",\n";
    if (r.failed) {
        os << in2 << "\"error\": {\n";
        os << in2 << "  \"code\": \"" << jsonEscape(r.errCode) << "\",\n";
        os << in2 << "  \"message\": \"" << jsonEscape(r.errMessage)
           << "\"\n";
        os << in2 << "},\n";
    }
    os << in2 << "\"instructions\": " << r.core.instructions << ",\n";
    os << in2 << "\"cycles\": " << r.core.cycles << ",\n";
    os << in2 << "\"ipc\": " << r.ipc() << ",\n";
    os << in2 << "\"cpi\": " << r.cpi() << ",\n";
    os << in2 << "\"cpi_stack\": {\n";
    os << in2 << "  \"base\": " << r.core.stackBase() << ",\n";
    os << in2 << "  \"l2\": " << r.core.stackL2 << ",\n";
    os << in2 << "  \"dram\": " << r.core.stackDram << ",\n";
    os << in2 << "  \"branch\": " << r.core.stackBranch << ",\n";
    os << in2 << "  \"svu\": " << r.core.stackSvu << ",\n";
    os << in2 << "  \"other\": " << r.core.stackOther << "\n";
    os << in2 << "},\n";
    os << in2 << "\"loads\": " << r.core.loads << ",\n";
    os << in2 << "\"stores\": " << r.core.stores << ",\n";
    os << in2 << "\"branches\": " << r.core.branches << ",\n";
    os << in2 << "\"branch_mispredicts\": " << r.core.branchMispredicts
       << ",\n";
    os << in2 << "\"l1d_hits\": " << r.l1dHits << ",\n";
    os << in2 << "\"l1d_misses\": " << r.l1dMisses << ",\n";
    os << in2 << "\"l2_hits\": " << r.l2Hits << ",\n";
    os << in2 << "\"l2_misses\": " << r.l2Misses << ",\n";
    os << in2 << "\"dram_transfers\": " << r.dramTransfers << ",\n";
    os << in2 << "\"dram_traffic\": {\n";
    os << in2 << "  \"demand_data\": " << r.traffic.demandData << ",\n";
    os << in2 << "  \"demand_ifetch\": " << r.traffic.demandIfetch
       << ",\n";
    os << in2 << "  \"pref_stride\": " << r.traffic.prefStride << ",\n";
    os << in2 << "  \"pref_svr\": " << r.traffic.prefSvr << ",\n";
    os << in2 << "  \"pref_imp\": " << r.traffic.prefImp << ",\n";
    os << in2 << "  \"writebacks\": " << r.traffic.writebacks << "\n";
    os << in2 << "},\n";
    os << in2 << "\"tlb_walks\": " << r.tlbWalks << ",\n";
    os << in2 << "\"svr\": {\n";
    os << in2 << "  \"rounds\": " << r.core.svrRounds << ",\n";
    os << in2 << "  \"transient_scalars\": " << r.core.transientScalars
       << ",\n";
    os << in2 << "  \"prefetches\": " << r.core.svrPrefetches << ",\n";
    os << in2 << "  \"llc_accuracy\": " << r.svrAccuracyLlc << "\n";
    os << in2 << "},\n";
    os << in2 << "\"imp_llc_accuracy\": " << r.impAccuracyLlc << ",\n";
    // Only sampled runs mention sampling at all: a full-detail run's
    // JSON must stay byte-identical to the pre-sampling format.
    if (r.sampled) {
        os << in2 << "\"sampled\": {\n";
        os << in2 << "  \"windows\": " << r.sampleWindows << ",\n";
        os << in2 << "  \"measured_instructions\": "
           << r.measuredInstructions << ",\n";
        os << in2 << "  \"cpi_stderr\": " << r.cpiStderr << ",\n";
        os << in2 << "  \"cpi_ci95\": " << 1.96 * r.cpiStderr << "\n";
        os << in2 << "},\n";
    }
    os << in2 << "\"energy\": {\n";
    os << in2 << "  \"total_nj\": " << r.energy.totalNJ() << ",\n";
    os << in2 << "  \"per_instr_nj\": " << r.energyPerInstr() << ",\n";
    os << in2 << "  \"core_static_nj\": " << r.energy.coreStatic << ",\n";
    os << in2 << "  \"core_dynamic_nj\": " << r.energy.coreDynamic
       << ",\n";
    os << in2 << "  \"svr_dynamic_nj\": " << r.energy.svrDynamic << ",\n";
    os << in2 << "  \"cache_dynamic_nj\": " << r.energy.cacheDynamic
       << ",\n";
    os << in2 << "  \"dram_static_nj\": " << r.energy.dramStatic << ",\n";
    os << in2 << "  \"dram_dynamic_nj\": " << r.energy.dramDynamic
       << "\n";
    os << in2 << "}\n";
    os << indent << "}";
}

} // namespace

std::string
toJson(const SimResult &r)
{
    std::ostringstream os;
    emitResult(os, r, "");
    os << "\n";
    return os.str();
}

std::string
toJson(const std::vector<SimResult> &results)
{
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); i++) {
        emitResult(os, results[i], "  ");
        if (i + 1 < results.size())
            os << ",";
        os << "\n";
    }
    os << "]\n";
    return os.str();
}

std::string
csvHeader(bool sampled)
{
    std::string header =
        "workload,config,instructions,cycles,ipc,cpi,"
        "stack_base,stack_l2,stack_dram,stack_branch,stack_svu,"
        "stack_other,loads,stores,branches,branch_mispredicts,"
        "l1d_hits,l1d_misses,l2_hits,l2_misses,dram_transfers,"
        "tlb_walks,svr_rounds,svr_scalars,svr_prefetches,"
        "svr_llc_accuracy,energy_per_instr_nj,status,attempts,"
        "error_code";
    if (sampled)
        header += ",sample_windows,measured_instructions,cpi_stderr";
    return header;
}

std::string
csvRow(const SimResult &r, bool sampled)
{
    std::ostringstream os;
    os << r.workload << ',' << r.config << ',' << r.core.instructions
       << ',' << r.core.cycles << ',' << r.ipc() << ',' << r.cpi() << ','
       << r.core.stackBase() << ',' << r.core.stackL2 << ','
       << r.core.stackDram << ',' << r.core.stackBranch << ','
       << r.core.stackSvu << ',' << r.core.stackOther << ','
       << r.core.loads << ',' << r.core.stores << ',' << r.core.branches
       << ',' << r.core.branchMispredicts << ',' << r.l1dHits << ','
       << r.l1dMisses << ',' << r.l2Hits << ',' << r.l2Misses << ','
       << r.dramTransfers << ',' << r.tlbWalks << ',' << r.core.svrRounds
       << ',' << r.core.transientScalars << ',' << r.core.svrPrefetches
       << ',' << r.svrAccuracyLlc << ',' << r.energyPerInstr() << ','
       << (r.failed ? "failed" : "ok") << ',' << r.attempts << ','
       << r.errCode;
    if (sampled) {
        os << ',' << r.sampleWindows << ',' << r.measuredInstructions
           << ',' << r.cpiStderr;
    }
    return os.str();
}

} // namespace svr
