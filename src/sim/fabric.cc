#include "sim/fabric.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "common/wire.hh"
#include "sim/config.hh"
#include "workloads/suites.hh"

namespace svr
{

namespace
{

using RecvStatus = WireConn::RecvStatus;

/** Token reader over one wire message (mirrors the journal Reader). */
struct Tok
{
    std::istringstream is;
    bool ok = true;

    explicit Tok(const std::string &text) : is(text) {}

    std::string
    raw()
    {
        std::string t;
        if (!(is >> t))
            ok = false;
        return t;
    }

    std::string str() { return journalUnescape(raw()); }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        if (!(is >> v))
            ok = false;
        return v;
    }

    /** Everything after the current position (leading space trimmed). */
    std::string
    rest()
    {
        std::string r;
        std::getline(is, r);
        const std::size_t pos = r.find_first_not_of(' ');
        return pos == std::string::npos ? std::string{} : r.substr(pos);
    }
};

} // namespace

std::string
SweepSpec::encode() const
{
    std::ostringstream os;
    os << journalEscape(key.suite) << ' ' << journalEscape(key.configs)
       << ' ' << key.window << ' ' << key.seed << ' '
       << journalEscape(key.sampling) << ' ' << (keepGoing ? 1 : 0) << ' '
       << retries;
    return os.str();
}

bool
SweepSpec::decode(const std::string &text, SweepSpec &out)
{
    Tok t(text);
    SweepSpec s;
    s.key.suite = t.str();
    s.key.configs = t.str();
    s.key.window = t.u64();
    s.key.seed = t.u64();
    s.key.sampling = t.str();
    s.keepGoing = t.u64() != 0;
    s.retries = static_cast<unsigned>(t.u64());
    if (!t.ok || s.key.suite.empty() || s.key.configs.empty() ||
        s.retries == 0) {
        return false;
    }
    out = std::move(s);
    return true;
}

void
SweepSpec::materialize(std::vector<WorkloadSpec> &workloads,
                       std::vector<SimConfig> &configs) const
{
    // Under ScopedErrorCapture a bad suite/config name from a
    // mismatched peer throws instead of exiting the process.
    ScopedErrorCapture scope(ErrCode::ConfigInvalid);

    SamplingParams sampling;
    if (!key.sampling.empty()) {
        unsigned long long e = 0, w = 0, u = 0;
        if (std::sscanf(key.sampling.c_str(), "%llu/%llu/%llu", &e, &w,
                        &u) != 3) {
            throw simErrorf(ErrCode::ConfigInvalid, {},
                            "fabric: bad sampling spec '%s'",
                            key.sampling.c_str());
        }
        sampling.sampleEvery = e;
        sampling.sampleWindow = w;
        sampling.warmup = u;
    }

    workloads = suiteByName(key.suite);

    configs.clear();
    std::size_t start = 0;
    const std::string &list = key.configs;
    while (start <= list.size()) {
        const std::size_t end = list.find(',', start);
        const std::string name =
            list.substr(start, end == std::string::npos ? std::string::npos
                                                        : end - start);
        if (!name.empty()) {
            SimConfig c = presets::byName(name);
            c.maxInstructions = key.window;
            c.sampling = sampling;
            configs.push_back(std::move(c));
        }
        if (end == std::string::npos)
            break;
        start = end + 1;
    }
    if (workloads.empty() || configs.empty()) {
        throw simErrorf(ErrCode::ConfigInvalid, {},
                        "fabric: sweep spec yields an empty matrix");
    }
}

LeaseQueue::LeaseQueue(std::size_t num_cells, unsigned chunk,
                       unsigned max_attempts,
                       const std::vector<std::size_t> &already_done,
                       std::uint64_t epoch_base)
    : cells(num_cells), nextLease(epoch_base + 1),
      chunkSize(chunk > 0 ? chunk : 1),
      maxAttempts(max_attempts > 0 ? max_attempts : 1)
{
    for (std::size_t idx : already_done) {
        if (idx < cells.size() && cells[idx].state == CellState::Pending) {
            cells[idx].state = CellState::Done;
            numDone++;
        }
    }
    // Seed the pending list in reverse so the LIFO hands out cell 0
    // first — purely cosmetic (progress reads naturally), never
    // correctness: results are keyed by cell index.
    pending.reserve(num_cells - numDone);
    for (std::size_t i = num_cells; i-- > 0;) {
        if (cells[i].state == CellState::Pending)
            pending.push_back(i);
    }
}

std::uint64_t
LeaseQueue::take(std::vector<std::size_t> &out, std::uint64_t now_ms)
{
    out.clear();
    while (out.size() < chunkSize && !pending.empty()) {
        const std::size_t idx = pending.back();
        pending.pop_back();
        // A cell can complete while sitting in pending (a reclaimed
        // lease's worker turned out to be alive and reported it).
        if (cells[idx].state != CellState::Pending)
            continue;
        cells[idx].state = CellState::Leased;
        cells[idx].attempts++;
        out.push_back(idx);
    }
    if (out.empty())
        return 0;
    const std::uint64_t id = nextLease++;
    active[id] = LeaseInfo{out, now_ms, false};
    return id;
}

std::uint64_t
LeaseQueue::hedge(std::vector<std::size_t> &out, std::uint64_t now_ms,
                  std::uint64_t overdue_ms)
{
    out.clear();
    const LeaseInfo *victim = nullptr;
    std::uint64_t victim_id = 0;
    for (const auto &entry : active) {
        const LeaseInfo &info = entry.second;
        if (info.hedged || info.bornMs + overdue_ms > now_ms)
            continue;
        bool open = false;
        for (std::size_t idx : info.cells)
            open |= cells[idx].state == CellState::Leased;
        if (!open)
            continue;
        if (!victim || info.bornMs < victim->bornMs) {
            victim = &info;
            victim_id = entry.first;
        }
    }
    if (!victim)
        return 0;
    for (std::size_t idx : victim->cells) {
        if (cells[idx].state == CellState::Leased) {
            cells[idx].attempts++;
            out.push_back(idx);
        }
    }
    active[victim_id].hedged = true;
    const std::uint64_t id = nextLease++;
    // The hedge twin is born pre-hedged so a straggling hedge never
    // spawns a third copy of the same cells.
    active[id] = LeaseInfo{out, now_ms, true};
    return id;
}

bool
LeaseQueue::complete(std::size_t cell)
{
    if (cell >= cells.size() || cells[cell].state == CellState::Done ||
        cells[cell].state == CellState::Poisoned) {
        return false;
    }
    cells[cell].state = CellState::Done;
    numDone++;
    return true;
}

bool
LeaseQueue::leasedElsewhere(std::size_t idx, std::uint64_t lease_id) const
{
    for (const auto &entry : active) {
        if (entry.first == lease_id)
            continue;
        for (std::size_t other : entry.second.cells) {
            if (other == idx)
                return true;
        }
    }
    return false;
}

std::size_t
LeaseQueue::reclaim(std::uint64_t lease_id,
                    std::vector<std::size_t> &poisoned)
{
    poisoned.clear();
    const auto it = active.find(lease_id);
    if (it == active.end())
        return 0;
    std::size_t requeued = 0;
    for (std::size_t idx : it->second.cells) {
        if (cells[idx].state != CellState::Leased)
            continue; // already completed (result beat the death)
        if (leasedElsewhere(idx, lease_id))
            continue; // a hedge twin still works on it
        if (cells[idx].attempts >= maxAttempts) {
            cells[idx].state = CellState::Poisoned;
            numPoisoned++;
            poisoned.push_back(idx);
        } else {
            cells[idx].state = CellState::Pending;
            pending.push_back(idx);
            requeued++;
        }
    }
    active.erase(it);
    return requeued;
}

void
LeaseQueue::release(std::uint64_t lease_id)
{
    active.erase(lease_id);
}

bool
LeaseQueue::leaseActive(std::uint64_t lease_id) const
{
    return active.find(lease_id) != active.end();
}

bool
LeaseQueue::allDone() const
{
    return numDone + numPoisoned == cells.size();
}

namespace
{

// ---------------------------------------------------------------- //
// Coordinator                                                      //
// ---------------------------------------------------------------- //

/** Shared coordinator state; mtx guards everything mutable. */
struct Coord
{
    const FabricOptions &opts;
    const std::vector<WorkloadSpec> &workloads;
    const std::vector<SimConfig> &configs;
    const SweepSpec &spec;
    std::string specEnc;
    SweepJournal *journal;
    FaultPlan faults;       //!< coordinator-side (ckill@) injection
    std::int64_t hedgeMs;   //!< overdue threshold; < 0 = disabled
    std::chrono::steady_clock::time_point t0;

    std::mutex mtx;
    LeaseQueue leases;
    std::vector<SimResult> results; //!< workload-major, num_cells slots
    std::vector<char> have;
    bool abort = false;
    std::unique_ptr<SimError> fatal;
    unsigned workerIds = 0;
    unsigned workersSeen = 0;
    std::atomic<unsigned> activeHandlers{0};

    Coord(const FabricOptions &o, const std::vector<WorkloadSpec> &w,
          const std::vector<SimConfig> &c, const SweepSpec &s,
          SweepJournal *j, unsigned chunk,
          const std::vector<std::size_t> &already_done)
        : opts(o), workloads(w), configs(c), spec(s), journal(j),
          faults(FaultPlan::fromEnv()),
          hedgeMs(o.hedgeMs < 0
                      ? -1
                      : (o.hedgeMs > 0 ? o.hedgeMs
                                       : o.leaseTimeoutMs / 2)),
          t0(std::chrono::steady_clock::now()),
          // Lease ids carry a pid-derived epoch, so a restarted
          // coordinator can never re-grant an id a previous
          // incarnation handed out (lease fencing across restarts).
          leases(w.size() * c.size(), chunk, o.maxCellAttempts,
                 already_done,
                 static_cast<std::uint64_t>(::getpid()) << 32),
          results(w.size() * c.size()), have(w.size() * c.size(), 0)
    {
        specEnc = s.encode();
    }

    std::size_t numCells() const { return results.size(); }

    /** Milliseconds since this coordinator started (lease clock). */
    std::uint64_t
    nowMs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }

    const std::string &cellWorkload(std::size_t idx) const
    {
        return workloads[idx / configs.size()].name;
    }
    const std::string &cellConfig(std::size_t idx) const
    {
        return configs[idx % configs.size()].label;
    }

    /** Record a fatal sweep error once; first one wins. (mtx held) */
    void
    setFatal(const SimError &e)
    {
        if (!fatal)
            fatal = std::make_unique<SimError>(e);
        abort = true;
    }

    /** Store one completed cell. False = duplicate/stale. (mtx held) */
    bool
    storeResult(std::size_t idx, SimResult &&r)
    {
        if (idx >= numCells() || have[idx])
            return false;
        // The cell identity must match the matrix position — a
        // mismatch means a confused or mismatched worker.
        if (r.workload != cellWorkload(idx) ||
            r.config != cellConfig(idx)) {
            warn("fabric: dropping result for cell %zu with wrong "
                 "identity %s/%s",
                 idx, r.workload.c_str(), r.config.c_str());
            return false;
        }
        results[idx] = std::move(r);
        have[idx] = 1;
        leases.complete(idx);
        if (journal) {
            try {
                journal->append(results[idx]);
            } catch (const SimError &e) {
                setFatal(e);
            }
        }
        if (faults.shouldCoordKill(cellWorkload(idx), cellConfig(idx))) {
            // Crash-recovery hook: die like an external SIGKILL right
            // after this cell's record hit the journal. A restarted
            // coordinator must resume from the journal and finish the
            // sweep byte-identically.
            warn("fabric: injected coordinator kill after cell %s/%s",
                 cellWorkload(idx).c_str(), cellConfig(idx).c_str());
            std::raise(SIGKILL);
        }
        return true;
    }

    /**
     * Cells whose workers died maxCellAttempts times: synthesize the
     * deterministic WorkerLost failure record (keep-going) or abort
     * the sweep with it (fail-fast). (mtx held)
     */
    void
    poisonCells(const std::vector<std::size_t> &poisoned)
    {
        for (std::size_t idx : poisoned) {
            ErrContext ctx;
            ctx.workload = cellWorkload(idx);
            ctx.config = cellConfig(idx);
            const SimError err = simErrorf(
                ErrCode::WorkerLost, ctx,
                "lease abandoned after %u lost workers",
                opts.maxCellAttempts);
            if (!spec.keepGoing) {
                setFatal(err);
                return;
            }
            SimResult res;
            res.workload = cellWorkload(idx);
            res.config = cellConfig(idx);
            res.failed = true;
            res.errCode = errCodeName(err.code());
            res.errMessage = err.what();
            res.attempts = opts.maxCellAttempts;
            storeResult(idx, std::move(res));
        }
    }
};

/** Serve one worker connection until it finishes or is lost. */
void
serveWorker(Coord &C, WireConn conn)
{
    C.activeHandlers.fetch_add(1, std::memory_order_relaxed);
    struct Depart
    {
        Coord &c;
        ~Depart() { c.activeHandlers.fetch_sub(1, std::memory_order_relaxed); }
    } depart{C};

    std::string msg;
    unsigned workerId = 0;
    std::uint64_t currentLease = 0;

    try {
        if (conn.recv(msg, 15000) != RecvStatus::Ok)
            return;
        Tok hello(msg);
        if (hello.raw() != "HELLO")
            return;
        const std::uint64_t proto = hello.u64();
        const std::uint64_t jobs = hello.u64();
        const bool hello_ok = hello.ok;
        // Optional rejoin token: the worker id a previous session (of
        // this or an earlier coordinator incarnation) assigned.
        const std::string rejoin = hello_ok ? hello.raw() : std::string();
        if (!hello_ok || proto != fabricProtocolVersion) {
            conn.send("REJECT protocol-version");
            return;
        }
        {
            std::lock_guard<std::mutex> lock(C.mtx);
            workerId = ++C.workerIds;
            // A rejoining worker is the same machine coming back, not
            // new capacity: don't count it twice in the summary.
            if (rejoin.empty())
                C.workersSeen++;
        }
        conn.send("WELCOME " + std::to_string(workerId) + " " +
                  std::to_string(C.opts.leaseTimeoutMs) + " " + C.specEnc);
        if (C.opts.progress) {
            if (rejoin.empty()) {
                inform("fabric: worker %u joined (%llu jobs)", workerId,
                       static_cast<unsigned long long>(jobs));
            } else {
                inform("fabric: worker %u rejoined (was worker %s)",
                       workerId, rejoin.c_str());
            }
        }

        const char *loss = nullptr;
        std::vector<std::size_t> cells;
        for (;;) {
            const RecvStatus st =
                conn.recv(msg, C.opts.leaseTimeoutMs);
            if (st == RecvStatus::Timeout) {
                loss = "lease timeout";
                break;
            }
            if (st == RecvStatus::Eof) {
                // EOF without an outstanding lease is a clean exit.
                loss = currentLease != 0 ? "connection closed" : nullptr;
                break;
            }
            Tok t(msg);
            const std::string verb = t.raw();
            if (verb == "LEASE?") {
                std::lock_guard<std::mutex> lock(C.mtx);
                if (C.abort || C.leases.allDone()) {
                    conn.send("FIN");
                } else {
                    const std::uint64_t now = C.nowMs();
                    std::uint64_t id = C.leases.take(cells, now);
                    if (id == 0 && C.hedgeMs >= 0) {
                        id = C.leases.hedge(
                            cells, now,
                            static_cast<std::uint64_t>(C.hedgeMs));
                        if (id != 0 && C.opts.progress) {
                            inform("fabric: hedging %zu overdue "
                                   "cell(s) as lease %llu for worker "
                                   "%u",
                                   cells.size(),
                                   static_cast<unsigned long long>(id),
                                   workerId);
                        }
                    }
                    if (id == 0) {
                        conn.send("WAIT");
                    } else {
                        currentLease = id;
                        std::ostringstream os;
                        os << "LEASE " << id << ' ' << cells.size();
                        for (std::size_t idx : cells)
                            os << ' ' << idx;
                        conn.send(os.str());
                    }
                }
            } else if (verb == "RESULT") {
                const std::uint64_t lease = t.u64();
                const std::uint64_t idx = t.u64();
                const std::string line = t.rest();
                SimResult r;
                bool stop;
                bool stale;
                {
                    std::lock_guard<std::mutex> lock(C.mtx);
                    // Lease fencing: a result under a lease that is no
                    // longer live (reclaimed after a presumed death,
                    // released, or granted by a previous coordinator
                    // incarnation) is rejected — its cells are owned
                    // by someone else now.
                    stale = !C.leases.leaseActive(lease);
                    if (stale) {
                        warn("fabric: fencing stale result from "
                             "worker %u (lease %llu, cell %llu)",
                             workerId,
                             static_cast<unsigned long long>(lease),
                             static_cast<unsigned long long>(idx));
                    } else if (t.ok && parseJournalLine(line, r)) {
                        C.storeResult(static_cast<std::size_t>(idx),
                                      std::move(r));
                    } else {
                        warn("fabric: worker %u sent a malformed "
                             "result record",
                             workerId);
                    }
                    stop = C.abort;
                }
                conn.send(stop ? "STOP" : (stale ? "STALE" : "OK"));
            } else if (verb == "DONE") {
                const std::uint64_t lease = t.u64();
                bool stop;
                {
                    std::lock_guard<std::mutex> lock(C.mtx);
                    C.leases.release(lease);
                    if (lease == currentLease)
                        currentLease = 0;
                    stop = C.abort;
                }
                conn.send(stop ? "STOP" : "OK");
            } else if (verb == "PING") {
                std::lock_guard<std::mutex> lock(C.mtx);
                conn.send(C.abort ? "STOP" : "OK");
            } else if (verb == "ERROR") {
                // A fail-fast cell failure on the worker: surface it
                // from the coordinator exactly like the thread engine
                // rethrows the first cell error.
                const std::string codeName = t.str();
                const std::string what = t.str();
                ErrContext ctx;
                ctx.workload = t.str();
                ctx.config = t.str();
                ErrCode code = ErrCode::InternalInvariant;
                errCodeFromName(codeName, code);
                {
                    std::lock_guard<std::mutex> lock(C.mtx);
                    C.setFatal(SimError(code, what, ctx));
                }
                conn.send("STOP");
                loss = nullptr;
                currentLease = 0;
                break;
            } else {
                loss = "protocol violation";
                break;
            }
        }

        if (currentLease != 0) {
            std::vector<std::size_t> poisoned;
            std::lock_guard<std::mutex> lock(C.mtx);
            const std::size_t requeued =
                C.leases.reclaim(currentLease, poisoned);
            if (C.opts.progress && (requeued > 0 || !poisoned.empty())) {
                inform("fabric: worker %u lost (%s); reassigning %zu "
                       "cell(s)%s",
                       workerId, loss ? loss : "unknown", requeued,
                       poisoned.empty() ? "" : ", poisoning the rest");
            }
            C.poisonCells(poisoned);
        } else if (loss && C.opts.progress) {
            inform("fabric: worker %u disconnected (%s)", workerId, loss);
        }
    } catch (const SimError &e) {
        // Transport failure on this connection: reclaim and move on;
        // the sweep only dies when cells exhaust their attempts.
        std::vector<std::size_t> poisoned;
        std::lock_guard<std::mutex> lock(C.mtx);
        if (currentLease != 0) {
            const std::size_t requeued =
                C.leases.reclaim(currentLease, poisoned);
            if (C.opts.progress) {
                inform("fabric: worker %u lost (%s); reassigning %zu "
                       "cell(s)",
                       workerId, e.message().c_str(), requeued);
            }
            C.poisonCells(poisoned);
        }
    }
}

std::string
workerBinaryPath(const FabricOptions &opts)
{
    if (!opts.workerBinary.empty())
        return opts.workerBinary;
    if (const char *env = std::getenv("SVRSIM_WORKER_BIN"))
        return env;
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        const std::string self(buf);
        const std::size_t slash = self.rfind('/');
        if (slash != std::string::npos)
            return self.substr(0, slash + 1) + "svrsim_worker";
    }
    return "svrsim_worker";
}

pid_t
spawnWorker(const std::string &binary, const std::string &addr,
            unsigned jobs, int heartbeat_ms)
{
    const std::string jobs_str = std::to_string(jobs);
    const std::string hb_str = std::to_string(heartbeat_ms);
    const pid_t pid = ::fork();
    if (pid < 0) {
        throw simErrorf(ErrCode::IoError, {},
                        "fabric: fork failed: %s", std::strerror(errno));
    }
    if (pid == 0) {
        // Child: only async-signal-safe work between fork and exec.
        ::execl(binary.c_str(), "svrsim_worker", "--connect",
                addr.c_str(), "--jobs", jobs_str.c_str(),
                "--heartbeat", hb_str.c_str(),
                static_cast<char *>(nullptr));
        ::_exit(127);
    }
    return pid;
}

std::string
autoSocketPath(const std::string &scratch_dir)
{
    std::string dir = scratch_dir;
    if (dir.empty()) {
        const char *tmp = std::getenv("TMPDIR");
        dir = tmp && *tmp ? tmp : "/tmp";
    }
    std::string path = dir + "/.svrsim-fabric-" +
                       std::to_string(::getpid()) + ".sock";
    if (path.size() >= 100) {
        // sockaddr_un caps the path around 107 bytes; deep build
        // trees fall back to the system tmp dir.
        path = std::string("/tmp/.svrsim-fabric-") +
               std::to_string(::getpid()) + ".sock";
    }
    return path;
}

} // namespace

std::vector<SimResult>
runFabricSweep(const std::vector<WorkloadSpec> &workloads,
               const std::vector<SimConfig> &configs,
               const SweepSpec &spec, const FabricOptions &fopts,
               const JournalCells &restored, SweepJournal *journal,
               MatrixTiming *timing)
{
    using Clock = std::chrono::steady_clock;
    const auto t_start = Clock::now();

    const std::size_t num_cells = workloads.size() * configs.size();
    if (num_cells == 0)
        return {};
    if (fopts.spawnWorkers == 0 && fopts.listen.empty()) {
        throw simErrorf(ErrCode::ConfigInvalid, {},
                        "fabric: need --workers N and/or an explicit "
                        "--coordinator endpoint");
    }
    if (fopts.heartbeatMs <= 0 ||
        fopts.heartbeatMs * 3 >= fopts.leaseTimeoutMs) {
        // A worker must fit several heartbeats into one lease-timeout
        // window, or a healthy-but-quiet worker gets declared dead.
        throw simErrorf(ErrCode::ConfigInvalid, {},
                        "fabric: heartbeat period %d ms must be "
                        "positive and < leaseTimeout/3 (%d ms)",
                        fopts.heartbeatMs, fopts.leaseTimeoutMs / 3);
    }

    // Map restored cells onto matrix indices (extra journal cells —
    // e.g. a shard from a superset sweep — are simply ignored).
    std::vector<std::size_t> already_done;
    for (std::size_t idx = 0; idx < num_cells; idx++) {
        const auto it =
            restored.find({workloads[idx / configs.size()].name,
                           configs[idx % configs.size()].label});
        if (it != restored.end())
            already_done.push_back(idx);
    }

    // Auto lease size: a few leases per worker wave so reassignment
    // after a death stays cheap, floor 1, cap 64.
    unsigned chunk = fopts.chunk;
    if (chunk == 0) {
        const unsigned workers_hint =
            fopts.spawnWorkers > 0 ? fopts.spawnWorkers : 4;
        const std::size_t open_cells = num_cells - already_done.size();
        chunk = static_cast<unsigned>(
            open_cells / (static_cast<std::size_t>(workers_hint) * 4));
        if (chunk < 1)
            chunk = 1;
        if (chunk > 64)
            chunk = 64;
    }

    Coord C(fopts, workloads, configs, spec, journal, chunk,
            already_done);
    for (std::size_t idx : already_done) {
        C.results[idx] = restored.at({C.cellWorkload(idx),
                                      C.cellConfig(idx)});
        C.have[idx] = 1;
    }

    const std::string listen_spec =
        !fopts.listen.empty() ? fopts.listen
                              : "unix:" + autoSocketPath(fopts.scratchDir);
    WireListener listener(WireAddr::parse(listen_spec));
    if (fopts.progress)
        inform("fabric: listening on %s", listener.addr().str().c_str());

    // Spawn local workers before any handler thread exists, so fork()
    // happens while this process is still single-threaded.
    std::vector<pid_t> children;
    const std::string worker_bin = workerBinaryPath(fopts);
    const std::string connect_spec = listener.addr().str();
    for (unsigned i = 0; i < fopts.spawnWorkers; i++)
        children.push_back(spawnWorker(worker_bin, connect_spec,
                                       fopts.workerJobs,
                                       fopts.heartbeatMs));

    unsigned respawn_budget = fopts.respawnBudget > 0
                                  ? fopts.respawnBudget
                                  : 3 * fopts.spawnWorkers;
    const bool expect_external = !fopts.listen.empty();

    std::vector<std::thread> handlers;
    std::size_t live_children = children.size();
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(C.mtx);
            if (C.abort || C.leases.allDone())
                break;
        }

        // Reap dead local workers; respawn crashed ones while budget
        // lasts (clean exit 0 means the worker saw FIN — no respawn).
        for (pid_t &pid : children) {
            if (pid <= 0)
                continue;
            int status = 0;
            if (::waitpid(pid, &status, WNOHANG) != pid)
                continue;
            pid = -1;
            live_children--;
            const bool crashed =
                WIFSIGNALED(status) ||
                (WIFEXITED(status) && WEXITSTATUS(status) != 0);
            bool want_respawn = false;
            {
                std::lock_guard<std::mutex> lock(C.mtx);
                want_respawn = crashed && !C.abort &&
                               !C.leases.allDone() && respawn_budget > 0;
            }
            if (want_respawn) {
                respawn_budget--;
                if (fopts.progress)
                    inform("fabric: respawning a crashed local worker "
                           "(%u respawn(s) left)",
                           respawn_budget);
                pid = spawnWorker(worker_bin, connect_spec,
                                  fopts.workerJobs, fopts.heartbeatMs);
                live_children++;
            }
        }

        // All local workers dead, nothing to respawn, nobody
        // connected, and no external workers expected: the sweep can
        // never finish — fail instead of waiting forever.
        if (!expect_external && fopts.spawnWorkers > 0 &&
            live_children == 0 && respawn_budget == 0 &&
            C.activeHandlers.load(std::memory_order_relaxed) == 0) {
            std::lock_guard<std::mutex> lock(C.mtx);
            C.setFatal(SimError(ErrCode::WorkerLost,
                                "all local workers died and the "
                                "respawn budget is exhausted"));
            break;
        }

        WireConn conn = listener.accept(100);
        if (conn.valid())
            handlers.emplace_back(
                [&C](WireConn c) { serveWorker(C, std::move(c)); },
                std::move(conn));
    }

    bool aborted;
    {
        std::lock_guard<std::mutex> lock(C.mtx);
        aborted = C.abort;
    }
    if (aborted) {
        // Handler threads unblock when their peers die.
        for (pid_t pid : children) {
            if (pid > 0)
                ::kill(pid, SIGKILL);
        }
    }
    for (auto &h : handlers)
        h.join();

    // Graceful shutdown: every worker got FIN and exits on its own;
    // insist with SIGKILL if one lingers past the grace window.
    const auto grace_deadline =
        Clock::now() + std::chrono::milliseconds(10000);
    for (pid_t &pid : children) {
        if (pid <= 0)
            continue;
        int status = 0;
        while (::waitpid(pid, &status, WNOHANG) == 0) {
            if (Clock::now() > grace_deadline) {
                ::kill(pid, SIGKILL);
                ::waitpid(pid, &status, 0);
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        pid = -1;
    }

    {
        std::lock_guard<std::mutex> lock(C.mtx);
        if (C.fatal)
            throw *C.fatal;
        if (!C.leases.allDone()) {
            throw simErrorf(ErrCode::InternalInvariant, {},
                            "fabric: coordinator loop ended with "
                            "incomplete cells");
        }
    }

    const std::chrono::duration<double> elapsed = Clock::now() - t_start;
    MatrixTiming t;
    t.wallSeconds = elapsed.count();
    t.cells = num_cells;
    t.jobs = C.workersSeen > 0 ? C.workersSeen : 1;
    t.restoredCells = already_done.size();
    for (const SimResult &r : C.results) {
        t.instructions += r.core.instructions;
        if (r.failed)
            t.failedCells++;
    }
    if (fopts.progress) {
        inform("fabric: %zu cells in %.2fs (%.2f cells/sec, "
               "%.2f Msimips, %u workers)",
               t.cells, t.wallSeconds, t.cellsPerSec(), t.msimips(),
               t.jobs);
        if (t.failedCells > 0)
            warn("fabric: %zu cell(s) failed (see failure records)",
                 t.failedCells);
        if (t.restoredCells > 0)
            inform("fabric: %zu cell(s) restored from journal",
                   t.restoredCells);
    }
    if (timing)
        *timing = t;
    return std::move(C.results);
}

// ---------------------------------------------------------------- //
// Worker                                                           //
// ---------------------------------------------------------------- //

int
runFabricWorker(const WorkerOptions &opts)
{
    using Clock = std::chrono::steady_clock;

    std::mutex sock_mtx; // serializes request/response exchanges
    WireConn conn;
    std::atomic<bool> dead{false};
    std::atomic<bool> stop{false};

    // Session identity, pinned across reconnects.
    std::uint64_t worker_id = 0;
    std::string rejoin_token;  //!< previous worker id; "" on first join
    std::string pinned_spec;   //!< sweep spec from the first WELCOME
    SweepSpec spec;
    std::atomic<int> hb_period{opts.heartbeatMs > 0 ? opts.heartbeatMs
                                                    : 1000};

    // Heartbeat machinery (started after the first WELCOME).
    std::mutex hb_mtx;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::thread hb;
    const auto stopHeartbeat = [&]() {
        {
            std::lock_guard<std::mutex> lock(hb_mtx);
            hb_stop = true;
        }
        hb_cv.notify_all();
        if (hb.joinable())
            hb.join();
    };

    // One request/response exchange; false when the coordinator is
    // gone (also flags `dead` so concurrent cells stop early).
    const auto exchange = [&](const std::string &req, std::string &rep) {
        std::lock_guard<std::mutex> lock(sock_mtx);
        if (dead.load(std::memory_order_relaxed))
            return false;
        try {
            conn.send(req);
            if (conn.recv(rep, opts.replyTimeoutMs) != RecvStatus::Ok) {
                dead.store(true, std::memory_order_relaxed);
                return false;
            }
        } catch (const SimError &) {
            dead.store(true, std::memory_order_relaxed);
            return false;
        }
        if (rep == "STOP")
            stop.store(true, std::memory_order_relaxed);
        return true;
    };

    /**
     * HELLO/WELCOME over an already-connected conn (caller owns the
     * socket exclusively). 0 = welcomed, 1 = permanent rejection
     * (wrong protocol or a different sweep), 2 = transport trouble
     * (worth retrying).
     */
    const auto handshake = [&]() -> int {
        std::string msg;
        try {
            conn.send("HELLO " + std::to_string(fabricProtocolVersion) +
                      " " + std::to_string(opts.jobs) +
                      (rejoin_token.empty() ? std::string()
                                            : " " + rejoin_token));
            if (conn.recv(msg, opts.replyTimeoutMs) != RecvStatus::Ok)
                return 2;
        } catch (const SimError &) {
            return 2;
        }
        Tok wt(msg);
        if (wt.raw() != "WELCOME") {
            warn("worker: rejected by coordinator: %s", msg.c_str());
            return 1;
        }
        const std::uint64_t id = wt.u64();
        const std::uint64_t lease_timeout = wt.u64();
        SweepSpec got;
        if (!wt.ok || !SweepSpec::decode(wt.rest(), got)) {
            warn("worker: malformed WELCOME");
            return 1;
        }
        if (pinned_spec.empty()) {
            pinned_spec = got.encode();
            spec = got;
        } else if (got.encode() != pinned_spec) {
            // The endpoint answers, but with a different sweep — a
            // new campaign reused the address. Joining it would mean
            // simulating cells this process was never asked to run.
            warn("worker: coordinator now runs a different sweep; "
                 "not rejoining");
            return 1;
        }
        worker_id = id;
        rejoin_token = std::to_string(id);
        // Heartbeat coherence: several heartbeats must fit into one
        // lease-timeout window, or the coordinator declares a busy
        // worker dead between PINGs.
        const int requested =
            opts.heartbeatMs > 0 ? opts.heartbeatMs : 1000;
        int effective = requested;
        if (lease_timeout > 0 &&
            static_cast<std::uint64_t>(effective) * 3 >= lease_timeout) {
            effective = static_cast<int>(lease_timeout / 4);
            if (effective < 1)
                effective = 1;
            warn("worker: clamping heartbeat %d -> %d ms (lease "
                 "timeout %llu ms)",
                 requested, effective,
                 static_cast<unsigned long long>(lease_timeout));
        }
        hb_period.store(effective, std::memory_order_relaxed);
        return 0;
    };

    /**
     * The connection died: retry with exponential backoff + jitter
     * inside the opts.reconnectMs window, re-handshaking each time
     * (the coordinator may itself be restarting and replaying its
     * journal). Holds sock_mtx throughout, so lease tasks and the
     * heartbeat queue up behind it instead of racing the new socket.
     */
    // Flap damping: a connection that dies shortly after a successful
    // reconnect resumes the previous backoff instead of restarting at
    // 50 ms — hammering a partitioned link with instant retries burns
    // one lease attempt per cycle at the coordinator and can poison
    // cells before the partition even lifts.
    int backoff_carry = 50;
    Clock::time_point last_reconnect{};

    const auto reconnect = [&]() -> bool {
        if (opts.reconnectMs <= 0)
            return false;
        std::lock_guard<std::mutex> lock(sock_mtx);
        conn.close();
        // Deterministic per-process jitter decorrelates a worker
        // fleet's retry storms without nondeterministic seeds.
        Rng jitter(0x7ec0417e00000000ULL +
                   static_cast<std::uint64_t>(::getpid()));
        const auto deadline =
            Clock::now() + std::chrono::milliseconds(opts.reconnectMs);
        // A flapping link (died again < 3 s after the last successful
        // reconnect) resumes the grown backoff AND waits before the
        // first retry — the handshake itself may succeed mid-partition
        // (it is fault-exempt), so without the up-front wait the cycle
        // time would collapse back to zero.
        const bool flapping =
            last_reconnect != Clock::time_point{} &&
            Clock::now() - last_reconnect < std::chrono::seconds(3);
        int backoff = flapping ? backoff_carry : 50;
        bool retry = flapping;
        while (Clock::now() < deadline) {
            if (retry) {
                const int wait =
                    backoff / 2 +
                    static_cast<int>(jitter.nextBounded(
                        static_cast<std::uint64_t>(backoff / 2) + 1));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(wait));
                backoff = backoff >= 1000 ? 2000 : backoff * 2;
            }
            retry = true;
            try {
                conn = wireConnect(WireAddr::parse(opts.connect), 1000);
                const int hs = handshake();
                if (hs == 0) {
                    dead.store(false, std::memory_order_relaxed);
                    backoff_carry = backoff;
                    last_reconnect = Clock::now();
                    inform("worker %llu: reconnected to %s",
                           static_cast<unsigned long long>(worker_id),
                           opts.connect.c_str());
                    return true;
                }
                if (hs == 1)
                    return false;
            } catch (const SimError &) {
                // Endpoint not back yet; keep backing off.
            }
            conn.close();
        }
        warn("worker %llu: gave up reconnecting after %d ms",
             static_cast<unsigned long long>(worker_id),
             opts.reconnectMs);
        return false;
    };

    try {
        conn = wireConnect(WireAddr::parse(opts.connect),
                           opts.connectTimeoutMs);
        {
            const int hs = handshake();
            if (hs != 0) {
                if (hs == 2)
                    warn("worker: coordinator vanished during "
                         "handshake");
                return 2;
            }
        }

        std::vector<WorkloadSpec> workloads;
        std::vector<SimConfig> configs;
        spec.materialize(workloads, configs);
        const std::size_t num_cells = workloads.size() * configs.size();

        MatrixOptions mopts;
        mopts.baseSeed = spec.key.seed;
        mopts.keepGoing = spec.keepGoing;
        mopts.maxAttempts = spec.retries;
        mopts.faultPlan = FaultPlan::fromEnv();
        mopts.progress = false;
        mopts.summary = false;

        inform("worker %llu: connected to %s (%zu-cell matrix)",
               static_cast<unsigned long long>(worker_id),
               opts.connect.c_str(), num_cells);

        hb = std::thread([&] {
            std::unique_lock<std::mutex> lock(hb_mtx);
            while (!hb_cv.wait_for(
                lock,
                std::chrono::milliseconds(
                    hb_period.load(std::memory_order_relaxed)),
                [&] { return hb_stop; })) {
                // While the link is down the main loop owns recovery;
                // pinging would only pile onto the reconnect mutex.
                if (dead.load(std::memory_order_relaxed))
                    continue;
                lock.unlock();
                std::string rep;
                exchange("PING", rep);
                lock.lock();
            }
        });

        ThreadPool pool(opts.jobs);
        std::vector<std::size_t> cells;
        for (;;) {
            if (dead.load(std::memory_order_relaxed)) {
                if (!reconnect()) {
                    stopHeartbeat();
                    return 2;
                }
                continue;
            }
            if (stop.load(std::memory_order_relaxed))
                break;

            std::string reply;
            if (!exchange("LEASE?", reply))
                continue; // dead now; the loop head reconnects
            Tok t(reply);
            const std::string verb = t.raw();
            if (verb == "FIN" || verb == "STOP")
                break;
            if (verb == "WAIT") {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
                continue;
            }
            if (verb != "LEASE") {
                warn("worker %llu: unexpected reply '%s'",
                     static_cast<unsigned long long>(worker_id),
                     reply.c_str());
                stopHeartbeat();
                return 2;
            }
            const std::uint64_t lease_id = t.u64();
            const std::uint64_t n = t.u64();
            cells.clear();
            for (std::uint64_t i = 0; i < n && t.ok; i++)
                cells.push_back(static_cast<std::size_t>(t.u64()));
            if (!t.ok || cells.size() != n) {
                stopHeartbeat();
                return 2;
            }

            // Simulate the lease's cells — in parallel when jobs > 1.
            // The ThreadPool's capture-first-exception contract makes
            // a fail-fast SimError surface from parallelFor() exactly
            // like it surfaces from runMatrix().
            std::atomic<bool> lease_stale{false};
            pool.parallelFor(cells.size(), [&](std::size_t k) {
                const std::size_t idx = cells[k];
                if (idx >= num_cells) {
                    throw simErrorf(ErrCode::InternalInvariant, {},
                                    "fabric: leased cell %zu out of "
                                    "range",
                                    idx);
                }
                if (dead.load(std::memory_order_relaxed) ||
                    stop.load(std::memory_order_relaxed) ||
                    lease_stale.load(std::memory_order_relaxed)) {
                    return;
                }
                const WorkloadSpec &w = workloads[idx / configs.size()];
                const SimConfig &c = configs[idx % configs.size()];
                SimResult res = runIsolatedCell(w, c, mopts);
                res.workload = w.name;
                res.config = c.label;
                if (lease_stale.load(std::memory_order_relaxed))
                    return;
                std::string rep;
                if (!exchange("RESULT " + std::to_string(lease_id) +
                                  " " + std::to_string(idx) + " " +
                                  journalLine(res),
                              rep)) {
                    return;
                }
                if (rep == "STALE") {
                    // Lease fencing: the coordinator reassigned this
                    // lease (or restarted). The remaining cells are
                    // someone else's now — stop computing them.
                    lease_stale.store(true, std::memory_order_relaxed);
                    return;
                }
                if (mopts.faultPlan.shouldKill(res.workload,
                                               res.config)) {
                    // Crash-safety hook, mirroring the single-process
                    // sweep: die like an external SIGKILL right after
                    // the coordinator acknowledged this cell.
                    warn("worker %llu: injected kill after cell %s/%s",
                         static_cast<unsigned long long>(worker_id),
                         res.workload.c_str(), res.config.c_str());
                    std::raise(SIGKILL);
                }
            });

            if (dead.load(std::memory_order_relaxed) ||
                lease_stale.load(std::memory_order_relaxed)) {
                // Abandon the lease: no DONE. The coordinator either
                // reclaimed it already (stale) or will when it
                // notices the dead link; the loop head handles the
                // reconnect in the dead case.
                continue;
            }

            std::string rep;
            if (!exchange("DONE " + std::to_string(lease_id), rep))
                continue;
        }

        stopHeartbeat();
        inform("worker %llu: finished",
               static_cast<unsigned long long>(worker_id));
        return 0;
    } catch (const SimError &e) {
        // Fail-fast cell error (or setup failure): report it so the
        // coordinator aborts the sweep with this exact error, then
        // exit nonzero like the serial tool would.
        stopHeartbeat();
        try {
            if (conn.valid()) {
                std::lock_guard<std::mutex> lock(sock_mtx);
                conn.send(std::string("ERROR ") +
                          journalEscape(errCodeName(e.code())) + " " +
                          journalEscape(e.message()) + " " +
                          journalEscape(e.context().workload) + " " +
                          journalEscape(e.context().config));
                std::string rep;
                conn.recv(rep, 2000);
            }
        } catch (const SimError &) {
            // Coordinator already gone; nothing left to tell it.
        }
        warn("worker: fatal: %s", e.what());
        return 1;
    }
}

} // namespace svr
