#include "sim/simulator.hh"

#include <chrono>
#include <memory>

#include "common/logging.hh"
#include "core/executor.hh"
#include "core/inorder_core.hh"
#include "core/ooo_core.hh"
#include "imp/imp_prefetcher.hh"
#include "sim/sampled_sim.hh"
#include "svr/svr_engine.hh"

namespace svr
{

/**
 * The auto cycle budget is deliberately loose — three orders of
 * magnitude above any plausible CPI — so it only ever fires on a
 * genuinely stuck run, never on a slow one.
 */
WatchdogParams
resolveWatchdog(const SimConfig &config)
{
    WatchdogParams wd;
    if (config.watchdog.maxCycles == watchdogOff) {
        wd.maxCycles = 0;
    } else if (config.watchdog.maxCycles != 0) {
        wd.maxCycles = config.watchdog.maxCycles;
    } else {
        const std::uint64_t window = config.maxInstructions;
        // Saturate: an enormous window gets an unlimited budget
        // rather than a wrapped (tiny) one.
        wd.maxCycles = window > (~std::uint64_t{0} >> 10) ? 0
                                                          : window << 10;
    }
    if (config.watchdog.maxStallCycles == watchdogOff)
        wd.maxStallCycles = 0;
    else if (config.watchdog.maxStallCycles != 0)
        wd.maxStallCycles = config.watchdog.maxStallCycles;
    else
        wd.maxStallCycles = std::uint64_t{1} << 22;
    return wd;
}

CoreStats
runTimingWindow(const SimConfig &config, MemorySystem &mem, Executor &exec,
                FunctionalMemory &fmem, const SimHooks &hooks,
                const WatchdogParams &wd, const TimingWindow &window)
{
    CoreStats stats;
    switch (config.core) {
      case CoreType::InOrder: {
        InOrderCore core(config.inorder, mem);
        core.setCommitHook(hooks.commit);
        stats = core.run(exec, window.maxInstructions, wd, window.measure);
        break;
      }
      case CoreType::InOrderImp: {
        ImpPrefetcher imp(config.imp, fmem);
        mem.setObserver(&imp);
        InOrderCore core(config.inorder, mem);
        core.setCommitHook(hooks.commit);
        stats = core.run(exec, window.maxInstructions, wd, window.measure);
        mem.setObserver(nullptr);
        break;
      }
      case CoreType::OutOfOrder: {
        OoOCore core(config.ooo, mem);
        core.setCommitHook(hooks.commit);
        stats = core.run(exec, window.maxInstructions, wd, window.measure);
        break;
      }
      case CoreType::Svr: {
        SvrEngine engine(config.svr, mem, exec);
        if (window.svrIn)
            engine.importState(*window.svrIn);
        if (hooks.onSvrEngine)
            hooks.onSvrEngine(engine);
        InOrderCore core(config.inorder, mem);
        core.setRunaheadEngine(&engine);
        core.setCommitHook(hooks.commit);
        stats = core.run(exec, window.maxInstructions, wd, window.measure);
        if (hooks.onSvrEngineDone)
            hooks.onSvrEngineDone(engine);
        if (window.svrOut)
            *window.svrOut = engine.exportState();
        break;
      }
      default:
        fatal("simulate: bad core type");
    }
    return stats;
}

SimResult
simulate(const SimConfig &config, const WorkloadInstance &w)
{
    return simulate(config, w, SimHooks{});
}

SimResult
simulate(const SimConfig &config, const WorkloadInstance &w,
         const SimHooks &hooks)
{
    validateConfig(config);
    if (!w.program || !w.mem)
        fatal("simulate: workload '%s' has no program/memory",
              w.name.c_str());

    if (config.sampling.enabled())
        return simulateSampled(config, w, hooks);

    const WatchdogParams wd = resolveWatchdog(config);

    SimResult r;
    r.workload = w.name;
    r.config = config.label;

    MemorySystem mem(config.mem);
    Executor exec(*w.program, *w.mem);
    if (hooks.onExecutor)
        hooks.onExecutor(exec);

    TimingWindow window;
    window.maxInstructions = config.maxInstructions;

    const auto t_start = std::chrono::steady_clock::now();
    r.core = runTimingWindow(config, mem, exec, *w.mem, hooks, wd, window);
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - t_start;
    r.hostMillis = elapsed.count();

    r.l1dHits = mem.l1d().hits;
    r.l1dMisses = mem.l1d().misses;
    r.l2Hits = mem.l2().hits;
    r.l2Misses = mem.l2().misses;
    r.dramTransfers = mem.dram().transfers();
    r.traffic = mem.dramTraffic();
    r.tlbWalks = mem.translation().walks;
    for (unsigned i = 0; i < numPrefetchOrigins; i++)
        r.prefIssued[i] = mem.prefIssued(static_cast<PrefetchOrigin>(i));
    r.svrAccuracyLlc = mem.llcPrefetchAccuracy(PrefetchOrigin::Svr);
    r.impAccuracyLlc = mem.llcPrefetchAccuracy(PrefetchOrigin::Imp);
    r.strideAccuracyLlc = mem.llcPrefetchAccuracy(PrefetchOrigin::Stride);

    const CoreKind kind = config.core == CoreType::OutOfOrder
                              ? CoreKind::OutOfOrder
                              : CoreKind::InOrder;
    MemEnergyEvents ev;
    ev.l1Accesses = mem.l1d().hits + mem.l1d().misses + mem.l1i().hits +
                    mem.l1i().misses;
    ev.l2Accesses = mem.l2().hits + mem.l2().misses;
    ev.dramTransfers = mem.dram().transfers();
    r.energy = computeEnergy(kind, config.core == CoreType::Svr, r.core, ev,
                             config.energy);
    return r;
}

SimResult
simulate(const SimConfig &config, const WorkloadSpec &spec)
{
    const WorkloadInstance w = spec.make();
    return simulate(config, w);
}

namespace
{

/**
 * A runahead engine that blocks issue forever: every onIssue()
 * pushes the next issue cycle out by the watchdog's whole stall
 * budget and then some, so the core can never retire again.
 */
class StuckEngine : public RunaheadEngine
{
  public:
    Cycle
    onIssue(const DynInst &, Cycle issue_cycle) override
    {
        return issue_cycle + (Cycle{1} << 40);
    }
    void reset() override {}
    std::uint64_t transientScalars() const override { return 0; }
    std::uint64_t prefetchesIssued() const override { return 0; }
    std::uint64_t runaheadRounds() const override { return 0; }
};

} // namespace

SimResult
simulateInjectedHang(const SimConfig &config, const WorkloadInstance &w)
{
    validateConfig(config);
    if (!w.program || !w.mem)
        fatal("simulate: workload '%s' has no program/memory",
              w.name.c_str());

    const WatchdogParams wd = resolveWatchdog(config);

    MemorySystem mem(config.mem);
    Executor exec(*w.program, *w.mem);
    StuckEngine stuck;
    InOrderCore core(config.inorder, mem);
    core.setRunaheadEngine(&stuck);
    core.run(exec, config.maxInstructions, wd);
    panic("injected hang in '%s'/'%s' completed: watchdog disabled?",
          w.name.c_str(), config.label.c_str());
}

} // namespace svr
