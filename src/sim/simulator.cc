#include "sim/simulator.hh"

#include <chrono>
#include <memory>

#include "common/logging.hh"
#include "core/executor.hh"
#include "core/inorder_core.hh"
#include "core/ooo_core.hh"
#include "imp/imp_prefetcher.hh"
#include "svr/svr_engine.hh"

namespace svr
{

SimResult
simulate(const SimConfig &config, const WorkloadInstance &w)
{
    if (!w.program || !w.mem)
        fatal("simulate: workload '%s' has no program/memory",
              w.name.c_str());

    SimResult r;
    r.workload = w.name;
    r.config = config.label;

    MemorySystem mem(config.mem);
    Executor exec(*w.program, *w.mem);

    const auto t_start = std::chrono::steady_clock::now();
    switch (config.core) {
      case CoreType::InOrder: {
        InOrderCore core(config.inorder, mem);
        r.core = core.run(exec, config.maxInstructions);
        break;
      }
      case CoreType::InOrderImp: {
        ImpPrefetcher imp(config.imp, *w.mem);
        mem.setObserver(&imp);
        InOrderCore core(config.inorder, mem);
        r.core = core.run(exec, config.maxInstructions);
        mem.setObserver(nullptr);
        break;
      }
      case CoreType::OutOfOrder: {
        OoOCore core(config.ooo, mem);
        r.core = core.run(exec, config.maxInstructions);
        break;
      }
      case CoreType::Svr: {
        SvrEngine engine(config.svr, mem, exec);
        InOrderCore core(config.inorder, mem);
        core.setRunaheadEngine(&engine);
        r.core = core.run(exec, config.maxInstructions);
        break;
      }
      default:
        fatal("simulate: bad core type");
    }
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - t_start;
    r.hostMillis = elapsed.count();

    r.l1dHits = mem.l1d().hits;
    r.l1dMisses = mem.l1d().misses;
    r.l2Hits = mem.l2().hits;
    r.l2Misses = mem.l2().misses;
    r.dramTransfers = mem.dram().transfers();
    r.traffic = mem.dramTraffic();
    r.tlbWalks = mem.translation().walks;
    for (unsigned i = 0; i < numPrefetchOrigins; i++)
        r.prefIssued[i] = mem.prefIssued(static_cast<PrefetchOrigin>(i));
    r.svrAccuracyLlc = mem.llcPrefetchAccuracy(PrefetchOrigin::Svr);
    r.impAccuracyLlc = mem.llcPrefetchAccuracy(PrefetchOrigin::Imp);
    r.strideAccuracyLlc = mem.llcPrefetchAccuracy(PrefetchOrigin::Stride);

    const CoreKind kind = config.core == CoreType::OutOfOrder
                              ? CoreKind::OutOfOrder
                              : CoreKind::InOrder;
    MemEnergyEvents ev;
    ev.l1Accesses = mem.l1d().hits + mem.l1d().misses + mem.l1i().hits +
                    mem.l1i().misses;
    ev.l2Accesses = mem.l2().hits + mem.l2().misses;
    ev.dramTransfers = mem.dram().transfers();
    r.energy = computeEnergy(kind, config.core == CoreType::Svr, r.core, ev,
                             config.energy);
    return r;
}

SimResult
simulate(const SimConfig &config, const WorkloadSpec &spec)
{
    const WorkloadInstance w = spec.make();
    return simulate(config, w);
}

} // namespace svr
