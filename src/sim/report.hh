/**
 * @file
 * Machine-readable reporting: serialize simulation results to JSON
 * and CSV for downstream analysis (plotting, sweeps, CI tracking).
 */

#ifndef SVR_SIM_REPORT_HH
#define SVR_SIM_REPORT_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace svr
{

/** Serialize one result as a single JSON object (pretty-printed). */
std::string toJson(const SimResult &result);

/** Serialize many results as a JSON array. */
std::string toJson(const std::vector<SimResult> &results);

/** CSV header matching csvRow()'s columns. */
std::string csvHeader();

/** One CSV row per result. */
std::string csvRow(const SimResult &result);

} // namespace svr

#endif // SVR_SIM_REPORT_HH
