/**
 * @file
 * Machine-readable reporting: serialize simulation results to JSON
 * and CSV for downstream analysis (plotting, sweeps, CI tracking).
 */

#ifndef SVR_SIM_REPORT_HH
#define SVR_SIM_REPORT_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace svr
{

/** Serialize one result as a single JSON object (pretty-printed). */
std::string toJson(const SimResult &result);

/** Serialize many results as a JSON array. */
std::string toJson(const std::vector<SimResult> &results);

/**
 * CSV header matching csvRow()'s columns. Pass sampled=true for a
 * sampled sweep: three sampling columns (sample_windows,
 * measured_instructions, cpi_stderr) are appended. The default header
 * stays byte-identical to the pre-sampling format.
 */
std::string csvHeader(bool sampled = false);

/** One CSV row per result (@p sampled as for csvHeader()). */
std::string csvRow(const SimResult &result, bool sampled = false);

} // namespace svr

#endif // SVR_SIM_REPORT_HH
