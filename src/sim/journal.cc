#include "sim/journal.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unistd.h>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"

namespace svr
{

namespace
{

/** %-escape so a value is one whitespace-free token ("-" = empty). */
std::string
escapeField(const std::string &s)
{
    if (s.empty())
        return "-";
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r') {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02X",
                          static_cast<unsigned char>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
unescapeField(const std::string &s)
{
    if (s == "-")
        return "";
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); i++) {
        if (s[i] == '%' && i + 2 < s.size()) {
            const char hex[3] = {s[i + 1], s[i + 2], '\0'};
            out += static_cast<char>(std::strtoul(hex, nullptr, 16));
            i += 2;
        } else {
            out += s[i];
        }
    }
    return out;
}

/** Exact double round-trip: %.17g out, correctly-rounded strtod in. */
void
putDouble(std::ostringstream &os, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << ' ' << buf;
}

/** Token-stream reader that remembers whether anything went wrong. */
struct Reader
{
    std::istringstream is;
    bool ok = true;

    explicit Reader(const std::string &line) : is(line) {}

    std::string
    str()
    {
        std::string tok;
        if (!(is >> tok))
            ok = false;
        return unescapeField(tok);
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        if (!(is >> v))
            ok = false;
        return v;
    }

    double
    f64()
    {
        std::string tok;
        if (!(is >> tok)) {
            ok = false;
            return 0.0;
        }
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0')
            ok = false;
        return v;
    }
};

[[noreturn]] void
ioError(const char *op, const std::string &path, int err)
{
    throw simErrorf(ErrCode::IoError, {}, "journal: %s '%s' failed: %s",
                    op, path.c_str(), std::strerror(err));
}

std::string
headerLine(const SweepKey &key)
{
    std::ostringstream os;
    os << "J1 " << escapeField(key.suite) << ' '
       << escapeField(key.configs) << ' ' << key.window << ' '
       << key.seed;
    // Appended only when sampling is on: a full-detail sweep's header
    // stays byte-identical to the original J1 format.
    if (!key.sampling.empty())
        os << ' ' << escapeField(key.sampling);
    return os.str();
}

} // namespace

std::string
journalEscape(const std::string &s)
{
    return escapeField(s);
}

std::string
journalUnescape(const std::string &s)
{
    return unescapeField(s);
}

std::string
journalLine(const SimResult &r)
{
    std::ostringstream os;
    os << (r.sampled ? "R2 " : "R1 ") << escapeField(r.workload) << ' '
       << escapeField(r.config) << ' ' << (r.failed ? 1 : 0) << ' '
       << r.attempts << ' ' << escapeField(r.errCode);
    os << ' ' << r.core.instructions << ' ' << r.core.cycles << ' '
       << r.core.loads << ' ' << r.core.stores << ' ' << r.core.branches
       << ' ' << r.core.branchMispredicts << ' '
       << r.core.transientScalars << ' ' << r.core.svrPrefetches << ' '
       << r.core.svrRounds << ' ' << r.core.stackL2 << ' '
       << r.core.stackDram << ' ' << r.core.stackBranch << ' '
       << r.core.stackSvu << ' ' << r.core.stackOther;
    os << ' ' << r.l1dHits << ' ' << r.l1dMisses << ' ' << r.l2Hits
       << ' ' << r.l2Misses << ' ' << r.dramTransfers << ' '
       << r.traffic.demandData << ' ' << r.traffic.demandIfetch << ' '
       << r.traffic.prefStride << ' ' << r.traffic.prefSvr << ' '
       << r.traffic.prefImp << ' ' << r.traffic.writebacks << ' '
       << r.tlbWalks;
    for (unsigned i = 0; i < numPrefetchOrigins; i++)
        os << ' ' << r.prefIssued[i];
    putDouble(os, r.svrAccuracyLlc);
    putDouble(os, r.impAccuracyLlc);
    putDouble(os, r.strideAccuracyLlc);
    putDouble(os, r.energy.coreStatic);
    putDouble(os, r.energy.coreDynamic);
    putDouble(os, r.energy.svrDynamic);
    putDouble(os, r.energy.svrStatic);
    putDouble(os, r.energy.cacheDynamic);
    putDouble(os, r.energy.dramStatic);
    putDouble(os, r.energy.dramDynamic);
    if (r.sampled) {
        os << ' ' << r.sampleWindows << ' ' << r.measuredInstructions;
        putDouble(os, r.cpiStderr);
    }
    os << ' ' << escapeField(r.errMessage);
    return os.str();
}

bool
parseJournalLine(const std::string &line, SimResult &out)
{
    Reader rd(line);
    std::string tag;
    if (!(rd.is >> tag) || (tag != "R1" && tag != "R2"))
        return false;

    SimResult r;
    r.sampled = tag == "R2";
    r.workload = rd.str();
    r.config = rd.str();
    r.failed = rd.u64() != 0;
    r.attempts = static_cast<unsigned>(rd.u64());
    r.errCode = rd.str();
    r.core.instructions = rd.u64();
    r.core.cycles = rd.u64();
    r.core.loads = rd.u64();
    r.core.stores = rd.u64();
    r.core.branches = rd.u64();
    r.core.branchMispredicts = rd.u64();
    r.core.transientScalars = rd.u64();
    r.core.svrPrefetches = rd.u64();
    r.core.svrRounds = rd.u64();
    r.core.stackL2 = rd.u64();
    r.core.stackDram = rd.u64();
    r.core.stackBranch = rd.u64();
    r.core.stackSvu = rd.u64();
    r.core.stackOther = rd.u64();
    r.l1dHits = rd.u64();
    r.l1dMisses = rd.u64();
    r.l2Hits = rd.u64();
    r.l2Misses = rd.u64();
    r.dramTransfers = rd.u64();
    r.traffic.demandData = rd.u64();
    r.traffic.demandIfetch = rd.u64();
    r.traffic.prefStride = rd.u64();
    r.traffic.prefSvr = rd.u64();
    r.traffic.prefImp = rd.u64();
    r.traffic.writebacks = rd.u64();
    r.tlbWalks = rd.u64();
    for (unsigned i = 0; i < numPrefetchOrigins; i++)
        r.prefIssued[i] = rd.u64();
    r.svrAccuracyLlc = rd.f64();
    r.impAccuracyLlc = rd.f64();
    r.strideAccuracyLlc = rd.f64();
    r.energy.coreStatic = rd.f64();
    r.energy.coreDynamic = rd.f64();
    r.energy.svrDynamic = rd.f64();
    r.energy.svrStatic = rd.f64();
    r.energy.cacheDynamic = rd.f64();
    r.energy.dramStatic = rd.f64();
    r.energy.dramDynamic = rd.f64();
    if (r.sampled) {
        r.sampleWindows = rd.u64();
        r.measuredInstructions = rd.u64();
        r.cpiStderr = rd.f64();
    }
    r.errMessage = rd.str();
    if (!rd.ok || r.workload.empty() || r.config.empty())
        return false;
    out = std::move(r);
    return true;
}

SweepJournal::SweepJournal(const std::string &path, const SweepKey &key,
                           bool fsync_each)
    : journalPath(path), fsyncEach(fsync_each)
{
    // Append mode keeps existing records when resuming; the header is
    // only written when the file is new or empty.
    file = std::fopen(path.c_str(), "ab");
    if (!file)
        ioError("open", path, errno);
    // Whether 'a' mode positions at 0 or EOF before the first write is
    // implementation-defined; seek explicitly before the empty check.
    std::fseek(file, 0, SEEK_END);
    const long pos = std::ftell(file);
    if (pos == 0) {
        const std::string header = headerLine(key) + "\n";
        if (std::fwrite(header.data(), 1, header.size(), file) !=
                header.size() ||
            std::fflush(file) != 0) {
            const int err = errno;
            std::fclose(file);
            file = nullptr;
            ioError("write header", path, err);
        }
        if (fsyncEach && ::fsync(::fileno(file)) != 0) {
            const int err = errno;
            std::fclose(file);
            file = nullptr;
            ioError("fsync header", path, err);
        }
    }
}

SweepJournal::~SweepJournal()
{
    if (file)
        std::fclose(file);
}

void
SweepJournal::append(const SimResult &r)
{
    const std::string line = journalLine(r) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), file) != line.size() ||
        std::fflush(file) != 0) {
        // A short write here is ENOSPC (or a dying disk) surfacing
        // through stdio — either way the record cannot be trusted.
        ioError("append", journalPath, errno);
    }
    if (fsyncEach && ::fsync(::fileno(file)) != 0)
        ioError("fsync", journalPath, errno);
}

JournalCells
loadJournal(const std::string &path, const SweepKey &expect)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        ioError("open", path, errno);
    std::string content;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        content.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        ioError("read", path, EIO);

    // A record line is only trusted when newline-terminated: a crash
    // mid-append leaves a torn final line, which we drop.
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (true) {
        const std::size_t end = content.find('\n', start);
        if (end == std::string::npos)
            break;
        lines.push_back(content.substr(start, end - start));
        start = end + 1;
    }
    if (start < content.size())
        warn("journal '%s': dropping torn final line", path.c_str());

    if (lines.empty() || lines[0] != headerLine(expect)) {
        throw simErrorf(
            ErrCode::ConfigInvalid, {},
            "journal '%s' belongs to a different sweep (its header "
            "does not match suite/configs/window/seed); delete it or "
            "rerun with the original arguments",
            path.c_str());
    }

    JournalCells cells;
    for (std::size_t i = 1; i < lines.size(); i++) {
        if (lines[i].empty())
            continue;
        SimResult r;
        if (!parseJournalLine(lines[i], r)) {
            warn("journal '%s': skipping corrupt record line %zu",
                 path.c_str(), i + 1);
            continue;
        }
        cells[{r.workload, r.config}] = std::move(r);
    }
    return cells;
}

JournalCells
loadJournalShards(const std::vector<std::string> &paths,
                  const SweepKey &expect, std::size_t *duplicates)
{
    JournalCells merged;
    std::size_t dups = 0;
    for (const std::string &path : paths) {
        JournalCells shard = loadJournal(path, expect);
        for (auto &kv : shard) {
            // Identical cells are interchangeable (deterministic per-
            // cell streams), so only count the collision.
            if (!merged.emplace(kv.first, std::move(kv.second)).second)
                dups++;
        }
    }
    if (duplicates)
        *duplicates = dups;
    return merged;
}

} // namespace svr
