#!/usr/bin/env bash
# Determinism linter for the byte-identical-output paths.
#
# The sweep fabric's contract is that reports, journals, checkpoints,
# and stats artifacts are byte-identical across job counts, hosts, and
# resumes. That contract dies quietly the day someone iterates an
# unordered container into a report, keys an ordering on a pointer, or
# stamps host time into an artifact. This linter greps the artifact-
# producing sources for the known footguns and fails on any hit:
#
#   - unordered_map / unordered_set    (iteration order is unspecified)
#   - time( / clock( / localtime       (host time in artifact paths)
#   - rand( / srand( / random_device   (unseeded randomness; the
#                                       seeded common/rng.hh is fine)
#   - "%p" / <<(void*)                 (address-based output: ASLR)
#
# A deliberate, reviewed exception can be annotated with
# `// det-lint: allow` on the same line.
#
# Usage: determinism_lint.sh <repo-root>

set -u
root="${1:-.}"

# The artifact-producing sources: everything whose output is under the
# byte-identity contract (reports, journals, checkpoints, wire frames,
# stats, the lint/chain reports themselves).
files=(
    src/sim/report.cc
    src/sim/journal.cc
    src/sim/checkpoint.cc
    src/sim/experiment.cc
    src/sim/fabric.cc
    src/common/stats.cc
    src/common/io.cc
    src/common/wire.cc
    src/analysis/verifier.cc
    src/analysis/chains.cc
    src/analysis/chain_xcheck.cc
    tools/svrsim_lint.cpp
    tools/bench_report.cpp
)

patterns=(
    'unordered_map'
    'unordered_set'
    '\btime[[:space:]]*\('
    '\bclock[[:space:]]*\('
    'localtime'
    '\brand[[:space:]]*\('
    '\bsrand[[:space:]]*\('
    'random_device'
    '%p\b'
    '<<[[:space:]]*\(void[[:space:]]*\*\)'
)

status=0
for f in "${files[@]}"; do
    path="$root/$f"
    if [ ! -f "$path" ]; then
        echo "determinism-lint: missing file $f (update the list?)" >&2
        status=1
        continue
    fi
    for pat in "${patterns[@]}"; do
        # Strip allow-listed lines, then search.
        hits=$(grep -nE "$pat" "$path" | grep -v 'det-lint: allow' || true)
        if [ -n "$hits" ]; then
            echo "determinism-lint: $f matches /$pat/:" >&2
            echo "$hits" | sed 's/^/    /' >&2
            status=1
        fi
    done
done

if [ "$status" -eq 0 ]; then
    echo "determinism-lint: ${#files[@]} artifact-path files clean"
fi
exit "$status"
