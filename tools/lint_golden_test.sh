#!/usr/bin/env bash
# Golden-bytes test for svrsim_lint output.
#
# Two artifacts are pinned byte-for-byte so lint/chain classification
# changes are always reviewable in a diff:
#   chain_reports.txt — `svrsim_lint --all --chains` (human format,
#                       every registered program incl. SPEC suite)
#   lint_quick.json   — `svrsim_lint --suite quick --chains --json`
#                       (the machine-readable schema CI diffs)
#
# Refresh after an intentional analysis change with:
#   UPDATE_GOLDEN=1 tools/lint_golden_test.sh <lint-binary> tests/golden
#
# Usage: lint_golden_test.sh <svrsim_lint-binary> <golden-dir> [tmp-dir]

set -eu
lint="$1"
golden="$2"
tmp="${3:-$(mktemp -d)}"
mkdir -p "$tmp" "$golden"

"$lint" --all --chains >"$tmp/chain_reports.txt"
"$lint" --suite quick --chains --json >"$tmp/lint_quick.json"

if [ "${UPDATE_GOLDEN:-0}" = "1" ]; then
    cp "$tmp/chain_reports.txt" "$golden/chain_reports.txt"
    cp "$tmp/lint_quick.json" "$golden/lint_quick.json"
    echo "lint-golden: refreshed $golden"
    exit 0
fi

status=0
for f in chain_reports.txt lint_quick.json; do
    if [ ! -f "$golden/$f" ]; then
        echo "lint-golden: missing $golden/$f (run with UPDATE_GOLDEN=1)" >&2
        status=1
        continue
    fi
    if ! cmp -s "$golden/$f" "$tmp/$f"; then
        echo "lint-golden: $f diverged from golden:" >&2
        diff -u "$golden/$f" "$tmp/$f" | head -40 >&2
        echo "lint-golden: refresh with UPDATE_GOLDEN=1 if intended" >&2
        status=1
    fi
done

[ "$status" -eq 0 ] && echo "lint-golden: 2 artifacts byte-identical"
exit "$status"
