#!/usr/bin/env bash
# Fabric throughput gate: on a >= 200-cell sweep, a coordinator with
# N = nproc local workers must reach >= 3x the cells/sec of a
# single-process --jobs-only run. Wall-clock ratios only mean something
# when the host actually has parallel cores, so on hosts with < 4
# CPUs the measurement is reported but not asserted.
#
# Opt-in (ctest -C distributed-perf): load-sensitive by nature, like
# the bench-regress gate.
#
# Usage: distributed_perf_test.sh <svrsim_sweep-binary> <scratch-dir>
set -eu

SWEEP=$1
DIR=$2
# quick suite (8 workloads) x 25 svr widths + ino = 208 cells.
CONFIGS="ino,svr2,svr3,svr4,svr5,svr6,svr7,svr8,svr9,svr10,svr11,svr12"
CONFIGS="$CONFIGS,svr13,svr14,svr15,svr16,svr17,svr18,svr19,svr20"
CONFIGS="$CONFIGS,svr21,svr22,svr23,svr24,svr25,svr26"
ARGS="--suite quick --configs $CONFIGS --window 4000"

fail() { echo "FAIL: $*" >&2; exit 1; }

rm -rf "$DIR"
mkdir -p "$DIR"

NPROC=$(nproc 2>/dev/null || echo 1)
WORKERS=$NPROC
[ "$WORKERS" -gt 8 ] && WORKERS=8

cells_per_sec() {
    # "fabric: 208 cells in 1.23s (169.11 cells/sec, ..." or
    # "matrix: 208 cells in 1.23s (169.11 cells/sec, ..."
    sed -n 's/.* (\([0-9.]*\) cells\/sec.*/\1/p' "$1" | tail -n 1
}

echo "== baseline: single process, --jobs 1"
"$SWEEP" $ARGS --jobs 1 --out "$DIR/serial.csv" 2> "$DIR/serial.log"
BASE=$(cells_per_sec "$DIR/serial.log")
[ -n "$BASE" ] || fail "no cells/sec in the serial summary"

echo "== fabric: --workers $WORKERS"
"$SWEEP" $ARGS --workers "$WORKERS" --out "$DIR/fabric.csv" \
    2> "$DIR/fabric.log"
FAB=$(cells_per_sec "$DIR/fabric.log")
[ -n "$FAB" ] || fail "no cells/sec in the fabric summary"

cmp "$DIR/serial.csv" "$DIR/fabric.csv" ||
    fail "fabric artifact differs from the serial run"

RATIO=$(awk -v f="$FAB" -v b="$BASE" 'BEGIN { printf "%.2f", f / b }')
echo "baseline $BASE cells/sec, fabric $FAB cells/sec => ${RATIO}x" \
     "($WORKERS workers, $NPROC cpus)"

if [ "$NPROC" -lt 4 ]; then
    echo "SKIP: only $NPROC cpu(s); >= 3x needs >= 4 cores to be physical"
    exit 0
fi
awk -v r="$RATIO" 'BEGIN { exit (r >= 3.0) ? 0 : 1 }' ||
    fail "fabric speedup ${RATIO}x is below the 3x floor"
echo "PASS: fabric reaches ${RATIO}x single-process throughput"
