#!/usr/bin/env bash
# Chaos end-to-end test for the distributed sweep fabric: the sweep
# must stay byte-identical to a fault-free serial run while the
# network misbehaves underneath it (SVRSIM_NET_FAULT, common/wire.hh)
# and the processes themselves are killed (SVRSIM_FAULT).
#
#   1. serial fault-free reference artifact
#   2. lossy network              -> seeded drop/corrupt/delay schedule
#                                   over a 3-worker TCP sweep; leases
#                                   reclaimed, frames rejected by CRC,
#                                   artifact still byte-identical
#   3. full chaos                 -> lossy network + one worker SIGKILL
#                                   + one coordinator SIGKILL; a
#                                   restarted coordinator on the same
#                                   endpoint resumes from the journal
#                                   (orphaned workers' stale leases are
#                                   fenced) and finishes byte-identical
#   4. partition window           -> every send fails for a 1.2 s
#                                   window; workers back off, rejoin,
#                                   artifact still byte-identical
#
# Usage: chaos_sweep_test.sh <svrsim_sweep-binary> <scratch-dir>
set -eu

SWEEP=$1
DIR=$2
ARGS="--suite quick --configs ino,svr16 --window 10000"
PORT=$((21000 + $$ % 20000))

fail() { echo "FAIL: $*" >&2; exit 1; }

rm -rf "$DIR"
mkdir -p "$DIR"

echo "== step 1: serial fault-free reference artifact"
"$SWEEP" $ARGS --json --out "$DIR/ref.json" 2> /dev/null
[ -f "$DIR/ref.json" ] || fail "serial run wrote no JSON artifact"

echo "== step 2: lossy network (drop/corrupt/delay), 3 workers"
SVRSIM_NET_FAULT='seed=7;drop=0.03;corrupt=0.02;delay=0.05/20;after=4' \
    "$SWEEP" $ARGS --json --workers 3 \
    --coordinator "tcp:127.0.0.1:$PORT" \
    --lease-timeout 8000 --heartbeat-ms 500 \
    --out "$DIR/lossy.json" 2> "$DIR/lossy.log"
grep -q "net-fault injector armed" "$DIR/lossy.log" ||
    fail "fault injector never armed"
cmp "$DIR/ref.json" "$DIR/lossy.json" ||
    fail "artifact differs under a lossy network"

echo "== step 3: lossy network + worker kill + coordinator kill"
PORT=$((PORT + 1))
rc=0
SVRSIM_NET_FAULT='seed=11;drop=0.02;corrupt=0.01;after=4' \
SVRSIM_FAULT='ckill@Camel/SVR16;kill@HJ8/SVR16' \
    "$SWEEP" $ARGS --json --workers 3 \
    --coordinator "tcp:127.0.0.1:$PORT" \
    --lease-timeout 8000 --heartbeat-ms 500 \
    --out "$DIR/chaos.json" 2> "$DIR/chaos1.log" || rc=$?
[ "$rc" -ne 0 ] || fail "ckill'd coordinator run exited 0"
grep -q "injected coordinator kill" "$DIR/chaos1.log" ||
    fail "coordinator kill did not fire"
[ -f "$DIR/chaos.json.journal" ] ||
    fail "killed coordinator left no journal"
# Restart on the same endpoint under a fresh (still lossy) schedule:
# the journal is replayed, orphaned workers from run 1 may rejoin with
# their rejoin token (old-epoch results are fenced as STALE), and the
# sweep completes byte-identically.
SVRSIM_NET_FAULT='seed=13;drop=0.02;after=4' \
    "$SWEEP" $ARGS --json --workers 3 \
    --coordinator "tcp:127.0.0.1:$PORT" --resume \
    --lease-timeout 8000 --heartbeat-ms 500 \
    --out "$DIR/chaos.json" 2> "$DIR/chaos2.log"
grep -q "restored from journal" "$DIR/chaos2.log" ||
    fail "restarted coordinator restored nothing"
cmp "$DIR/ref.json" "$DIR/chaos.json" ||
    fail "artifact differs after full chaos"

echo "== step 4: partition window, workers ride it out"
PORT=$((PORT + 1))
# Every reconnect cycle inside the window burns one attempt per
# leased cell, so the budget must cover the whole window.
SVRSIM_NET_FAULT='seed=5;part=700+1200;after=2' \
    "$SWEEP" $ARGS --json --workers 2 --retries 12 \
    --coordinator "tcp:127.0.0.1:$PORT" \
    --lease-timeout 8000 --heartbeat-ms 500 \
    --out "$DIR/part.json" 2> "$DIR/part.log"
cmp "$DIR/ref.json" "$DIR/part.json" ||
    fail "artifact differs across a partition window"

rm -rf "$DIR"
echo "PASS: chaos sweep stays byte-identical to a fault-free serial run"
