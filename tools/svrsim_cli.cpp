/**
 * @file
 * svrsim_cli — run any workload on any machine configuration and print
 * a full statistics report.
 *
 * Usage:
 *   svrsim_cli [--list] [--workload NAME] [--core ino|imp|ooo|svr]
 *              [--n N] [--window INSTRS] [--mshrs M] [--bw GIBPS]
 *              [--ptws P] [--loop-bound MODE] [--no-waiting]
 *              [--svu-width W] [--srf K] [--dvr-recycling]
 *              [--sample-every E] [--sample-window W] [--warmup U]
 *              [--compare] [--jobs J]
 *
 * Examples:
 *   svrsim_cli --workload PR_KR --core svr --n 64
 *   svrsim_cli --workload HJ8 --core imp --window 1000000
 *   svrsim_cli --workload Camel --core svr --loop-bound maxlength
 *   svrsim_cli --workload BFS_UR --compare --jobs 4
 *   svrsim_cli --workload Camel --core svr --window 20000000 \
 *              --sample-every 2000000 --sample-window 40000 --warmup 20000
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/chains.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

using namespace svr;

namespace
{

void
usage()
{
    std::printf(
        "svrsim_cli — Scalar Vector Runahead simulator driver\n\n"
        "  --list                 list all workloads and exit\n"
        "  --workload NAME        workload to run (default PR_KR)\n"
        "  --core ino|imp|ooo|svr machine model (default svr)\n"
        "  --n N                  SVR vector length (default 16)\n"
        "  --window INSTRS        instructions to simulate (default %llu)\n"
        "  --mshrs M              L1D MSHRs (default 16)\n"
        "  --bw GIBPS             DRAM bandwidth (default 50)\n"
        "  --ptws P               page-table walkers (default 4)\n"
        "  --loop-bound MODE      lbd-wait|maxlength|lbd-maxlength|\n"
        "                         lbd-cv|ewma|tournament\n"
        "  --no-waiting           disable waiting mode (ablation)\n"
        "  --svu-width W          SVU scalars per cycle (default 1)\n"
        "  --srf K                speculative registers (default 8)\n"
        "  --dvr-recycling        DVR-style stop-when-full SRF policy\n"
        "  --oracle               seed the stride detector from the\n"
        "                         static chain analysis (svr core only)\n"
        "  --sample-every E       sampled simulation: one timing sample\n"
        "                         per E instrs (0 = full detail)\n"
        "  --sample-window W      measured instrs per sample\n"
        "  --warmup U             detailed-warmup instrs per sample\n"
        "  --json                 emit the result as JSON\n"
        "  --compare              run ino/imp/ooo/svrN side by side\n"
        "                         (parallel; see also SVRSIM_JOBS)\n"
        "  --jobs J               worker threads for --compare\n",
        static_cast<unsigned long long>(presets::simWindow()));
}

LoopBoundMode
parseLoopBound(const std::string &s)
{
    if (s == "lbd-wait")
        return LoopBoundMode::LbdWait;
    if (s == "maxlength")
        return LoopBoundMode::Maxlength;
    if (s == "lbd-maxlength")
        return LoopBoundMode::LbdMaxlength;
    if (s == "lbd-cv")
        return LoopBoundMode::LbdCv;
    if (s == "ewma")
        return LoopBoundMode::Ewma;
    if (s == "tournament")
        return LoopBoundMode::Tournament;
    fatal("unknown loop-bound mode '%s'", s.c_str());
}

} // namespace

int
main(int argc, char **argv)
try {
    std::string workload = "PR_KR";
    std::string core = "svr";
    bool json = false;
    bool compare = false;
    bool oracle = false;
    unsigned jobs = 0;
    unsigned n = 16;
    SimConfig config = presets::svrCore(16);
    config.maxInstructions = presets::simWindow();

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            std::printf("graph + HPC-DB suite:\n");
            for (const auto &w : fullSuite())
                std::printf("  %s\n", w.name.c_str());
            std::printf("SPEC-like suite:\n");
            for (const auto &w : specSuite())
                std::printf("  %s\n", w.name.c_str());
            return 0;
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--core") {
            core = next();
        } else if (arg == "--n") {
            n = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--window") {
            config.maxInstructions = std::stoull(next());
        } else if (arg == "--mshrs") {
            config.mem.l1d.numMshrs =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--bw") {
            config.mem.dram.bandwidthGiBps = std::stod(next());
        } else if (arg == "--ptws") {
            config.mem.translation.numWalkers =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--loop-bound") {
            config.svr.loopBound = parseLoopBound(next());
        } else if (arg == "--no-waiting") {
            config.svr.waitingMode = false;
        } else if (arg == "--svu-width") {
            config.svr.svuWidth =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--srf") {
            config.svr.numSrfRegs =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--dvr-recycling") {
            config.svr.recycle = SrfRecycle::StopWhenFull;
        } else if (arg == "--oracle") {
            oracle = true;
        } else if (arg == "--sample-every") {
            config.sampling.sampleEvery = std::stoull(next());
        } else if (arg == "--sample-window") {
            config.sampling.sampleWindow = std::stoull(next());
        } else if (arg == "--warmup") {
            config.sampling.warmup = std::stoull(next());
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--compare") {
            compare = true;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::stoul(next()));
        } else {
            usage();
            fatal("unknown argument '%s'", arg.c_str());
        }
    }

    if (core == "ino")
        config.core = CoreType::InOrder;
    else if (core == "imp")
        config.core = CoreType::InOrderImp;
    else if (core == "ooo")
        config.core = CoreType::OutOfOrder;
    else if (core == "svr")
        config.core = CoreType::Svr;
    else
        fatal("unknown core '%s'", core.c_str());
    config.svr.vectorLength = n;
    config.label = config.core == CoreType::Svr
                       ? "SVR" + std::to_string(n)
                       : std::string(coreTypeName(config.core));

    setInformEnabled(false);

    if (compare) {
        // One workload across the paper's comparison set, sharded
        // over the experiment engine's thread pool.
        std::vector<SimConfig> configs = {
            presets::inorder(), presets::impCore(), presets::outOfOrder(),
            presets::svrCore(n)};
        for (auto &c : configs)
            c.maxInstructions = config.maxInstructions;
        std::vector<std::string> labels;
        for (const auto &c : configs)
            labels.push_back(c.label);

        MatrixOptions opts;
        opts.jobs = jobs;
        opts.progress = false;
        MatrixTiming timing;
        const auto matrix =
            runMatrix({findWorkload(workload)}, configs, opts, &timing);

        printMetricTable(matrix, labels, "IPC",
                         [](const SimResult &res) { return res.ipc(); });
        printMetricTable(matrix, labels, "DRAM transfers (K lines)",
                         [](const SimResult &res) {
                             return static_cast<double>(res.dramTransfers) /
                                    1000.0;
                         });
        printMetricTable(matrix, labels, "energy per instr [nJ]",
                         [](const SimResult &res) {
                             return res.energyPerInstr();
                         });
        std::fprintf(stderr, "matrix: %zu cells in %.2fs "
                             "(%.2f cells/sec, %.2f Msimips, %u jobs)\n",
                     timing.cells, timing.wallSeconds,
                     timing.cellsPerSec(), timing.msimips(), timing.jobs);
        return 0;
    }

    const WorkloadInstance inst = findWorkload(workload).make();
    if (oracle) {
        if (config.core != CoreType::Svr)
            fatal("--oracle requires --core svr");
        // Seed the detector with every compile-time chain root; seeds
        // whose stride exceeds the detector's field are dropped by
        // StrideDetector::seed() itself.
        const ChainReport chains = analyzeChains(*inst.program);
        for (const ChainInfo &c : chains.chains) {
            if (c.strideKnown && c.stride != 0) {
                config.svr.oracleSeeds.push_back(
                    {Program::pcOf(c.rootIndex), c.stride});
            }
        }
        config.label += "-oracle";
    }

    const SimResult r = simulate(config, inst);

    if (json) {
        std::fputs(toJson(r).c_str(), stdout);
        return 0;
    }

    std::printf("workload        %s\n", r.workload.c_str());
    std::printf("machine         %s\n", r.config.c_str());
    std::printf("instructions    %llu\n",
                static_cast<unsigned long long>(r.core.instructions));
    std::printf("cycles          %llu\n",
                static_cast<unsigned long long>(r.core.cycles));
    std::printf("IPC             %.4f\n", r.ipc());
    std::printf("CPI             %.4f\n", r.cpi());
    if (r.sampled) {
        std::printf("\nsampling\n");
        std::printf("  windows       %llu\n",
                    static_cast<unsigned long long>(r.sampleWindows));
        std::printf("  measured      %llu of %llu instrs (%.2f%%)\n",
                    static_cast<unsigned long long>(
                        r.measuredInstructions),
                    static_cast<unsigned long long>(r.core.instructions),
                    100.0 * static_cast<double>(r.measuredInstructions) /
                        static_cast<double>(r.core.instructions));
        std::printf("  CPI           %.4f +/- %.4f (95%% CI)\n", r.cpi(),
                    1.96 * r.cpiStderr);
    }
    std::printf("\nCPI stack (cycles)\n");
    std::printf("  base          %llu\n",
                static_cast<unsigned long long>(r.core.stackBase()));
    std::printf("  mem-L2        %llu\n",
                static_cast<unsigned long long>(r.core.stackL2));
    std::printf("  mem-DRAM      %llu\n",
                static_cast<unsigned long long>(r.core.stackDram));
    std::printf("  branch        %llu\n",
                static_cast<unsigned long long>(r.core.stackBranch));
    std::printf("  SVU lockstep  %llu\n",
                static_cast<unsigned long long>(r.core.stackSvu));
    std::printf("  other         %llu\n",
                static_cast<unsigned long long>(r.core.stackOther));
    std::printf("\nmemory\n");
    std::printf("  L1D hit rate  %.2f%%\n",
                100.0 * static_cast<double>(r.l1dHits) /
                    static_cast<double>(r.l1dHits + r.l1dMisses));
    std::printf("  L2 hit rate   %.2f%%\n",
                100.0 * static_cast<double>(r.l2Hits) /
                    static_cast<double>(r.l2Hits + r.l2Misses + 1));
    std::printf("  DRAM lines    %llu (demand %llu, ifetch %llu, "
                "stride-pf %llu, svr %llu, imp %llu, wb %llu)\n",
                static_cast<unsigned long long>(r.dramTransfers),
                static_cast<unsigned long long>(r.traffic.demandData),
                static_cast<unsigned long long>(r.traffic.demandIfetch),
                static_cast<unsigned long long>(r.traffic.prefStride),
                static_cast<unsigned long long>(r.traffic.prefSvr),
                static_cast<unsigned long long>(r.traffic.prefImp),
                static_cast<unsigned long long>(r.traffic.writebacks));
    std::printf("  TLB walks     %llu\n",
                static_cast<unsigned long long>(r.tlbWalks));
    if (config.core == CoreType::Svr) {
        std::printf("\nSVR\n");
        std::printf("  rounds        %llu\n",
                    static_cast<unsigned long long>(r.core.svrRounds));
        std::printf("  scalars       %llu\n",
                    static_cast<unsigned long long>(
                        r.core.transientScalars));
        std::printf("  prefetches    %llu\n",
                    static_cast<unsigned long long>(r.core.svrPrefetches));
        std::printf("  LLC accuracy  %.2f%%\n", 100.0 * r.svrAccuracyLlc);
        if (oracle)
            std::printf("  oracle seeds  %zu\n",
                        config.svr.oracleSeeds.size());
    }
    if (config.core == CoreType::InOrderImp)
        std::printf("\nIMP LLC accuracy %.2f%%\n",
                    100.0 * r.impAccuracyLlc);
    std::printf("\nenergy\n");
    std::printf("  total         %.1f uJ\n", r.energy.totalNJ() / 1000.0);
    std::printf("  per instr     %.3f nJ\n", r.energyPerInstr());
    std::printf("  core power    %.3f W\n",
                r.energy.corePowerW(r.core.cycles, 2.0));
    return 0;
} catch (const SimError &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
