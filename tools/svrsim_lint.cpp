/**
 * @file
 * svrsim_lint — static IR verifier for workload programs.
 *
 * Builds each requested workload's program (no simulation) and runs
 * the analysis/verifier.hh checks over it: CFG construction, dominator
 * and dataflow passes, and the per-instruction structural checks.
 * Diagnostics quote the disassembly of the offending instruction.
 *
 * Usage:
 *   svrsim_lint --all                    lint every registered workload
 *   svrsim_lint --suite graph            graph|hpcdb|spec|full|quick
 *   svrsim_lint --workload PR_KR [...]   lint specific workloads
 *   svrsim_lint --dump                   also print full disassembly
 *   svrsim_lint --werror                 exit non-zero on warnings too
 *   svrsim_lint --quiet                  only print offending programs
 *   svrsim_lint --list-checks            print the diagnostic codes
 *
 * Exit status: 0 when every linted program is error-free (and, with
 * --werror, warning-free); 1 otherwise.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/verifier.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "isa/disassembler.hh"
#include "workloads/suites.hh"

using namespace svr;

namespace
{

void
usage()
{
    std::printf(
        "svrsim_lint — static IR verifier for workload programs\n\n"
        "  --all              lint every registered workload\n"
        "  --suite NAME       graph|hpcdb|spec|full|quick\n"
        "  --workload NAME    lint one workload (repeatable)\n"
        "  --dump             print each linted program's disassembly\n"
        "  --werror           treat warnings as errors\n"
        "  --quiet            only print programs with diagnostics\n"
        "  --list-checks      print every diagnostic code and exit\n");
}

void
listChecks()
{
    static constexpr LintCode codes[] = {
        LintCode::BadOpcode,      LintCode::BadRegField,
        LintCode::X0Write,        LintCode::BadBranchTarget,
        LintCode::FallOffEnd,     LintCode::UninitRead,
        LintCode::UninitFlags,    LintCode::NoExitLoop,
        LintCode::Unreachable,    LintCode::DeadWrite,
        LintCode::DeadCompare,    LintCode::RedundantBranch,
    };
    for (const LintCode c : codes) {
        std::printf("%-8s %s\n", lintCodeIsError(c) ? "error" : "warning",
                    lintCodeName(c));
    }
}

} // namespace

int
main(int argc, char **argv)
try {
    std::vector<std::string> names;
    std::string suite;
    bool all = false;
    bool dump = false;
    bool werror = false;
    bool quiet = false;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--suite") {
            suite = next();
        } else if (arg == "--workload") {
            names.push_back(next());
        } else if (arg == "--dump") {
            dump = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list-checks") {
            listChecks();
            return 0;
        } else {
            usage();
            fatal("unknown argument '%s'", arg.c_str());
        }
    }

    setInformEnabled(false);

    std::vector<WorkloadSpec> specs;
    if (all) {
        specs = fullSuite();
        for (const auto &w : specSuite())
            specs.push_back(w);
    } else if (suite == "graph") {
        specs = graphSuite();
    } else if (suite == "hpcdb") {
        specs = hpcdbSuite();
    } else if (suite == "full") {
        specs = fullSuite();
    } else if (suite == "spec") {
        specs = specSuite();
    } else if (suite == "quick") {
        specs = quickSuite();
    } else if (!suite.empty()) {
        fatal("unknown suite '%s'", suite.c_str());
    }
    for (const std::string &n : names)
        specs.push_back(findWorkload(n));
    if (specs.empty()) {
        usage();
        fatal("nothing to lint: pass --all, --suite, or --workload");
    }

    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (const WorkloadSpec &spec : specs) {
        const WorkloadInstance w = spec.make();
        const LintReport report = verifyProgram(*w.program);
        errors += report.errorCount();
        warnings += report.warningCount();
        if (!report.diags.empty()) {
            std::fputs(report.format().c_str(), stdout);
        } else if (!quiet) {
            std::printf("%s: clean (%zu instructions)\n",
                        spec.name.c_str(), w.program->size());
        }
        if (dump)
            std::fputs(disassemble(*w.program).c_str(), stdout);
    }

    std::printf("linted %zu program(s): %zu error(s), %zu warning(s)\n",
                specs.size(), errors, warnings);
    return errors > 0 || (werror && warnings > 0) ? 1 : 0;
} catch (const SimError &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
