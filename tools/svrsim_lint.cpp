/**
 * @file
 * svrsim_lint — static IR verifier + chain oracle for workload
 * programs.
 *
 * Builds each requested workload's program (no simulation) and runs
 * the analysis/verifier.hh checks over it: CFG construction, dominator
 * and dataflow passes, and the per-instruction structural checks. With
 * --chains it also runs the static dependence-chain analysis
 * (analysis/chains.hh): loop detection, induction-variable/stride
 * recognition, and per-memory-op chain classification, adding the
 * chain diagnostics (chain-too-deep, irregular-root-in-loop,
 * invariant-address-reload) to the lint stream.
 *
 * Usage:
 *   svrsim_lint --all                    lint every registered workload
 *   svrsim_lint --suite graph            graph|hpcdb|spec|full|quick
 *   svrsim_lint --workload PR_KR [...]   lint specific workloads
 *   svrsim_lint --chains                 run the static chain analysis
 *   svrsim_lint --oracle                 print the oracle seed table
 *   svrsim_lint --json                   machine-readable output
 *   svrsim_lint --dump                   also print full disassembly
 *   svrsim_lint --werror                 exit non-zero on warnings too
 *   svrsim_lint --quiet                  only print offending programs
 *   svrsim_lint --list-checks            print the diagnostic codes
 *
 * The --json schema ("svrsim-lint-v1") is stable and byte-
 * deterministic: one object per program, one object per diagnostic,
 * plus a chains section when --chains is on — CI diffs lint results
 * across PRs by byte comparison (tools/lint_golden_test.sh).
 *
 * Exit status: 0 when every linted program is error-free (and, with
 * --werror, warning-free); 1 otherwise.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/chains.hh"
#include "analysis/verifier.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "isa/disassembler.hh"
#include "workloads/suites.hh"

using namespace svr;

namespace
{

void
usage()
{
    std::printf(
        "svrsim_lint — static IR verifier + chain oracle\n\n"
        "  --all              lint every registered workload\n"
        "  --suite NAME       graph|hpcdb|spec|full|quick\n"
        "  --workload NAME    lint one workload (repeatable)\n"
        "  --chains           run the static chain analysis too\n"
        "  --oracle           print the oracle seed table (implies "
        "--chains)\n"
        "  --json             machine-readable output (svrsim-lint-v1)\n"
        "  --dump             print each linted program's disassembly\n"
        "  --werror           treat warnings as errors\n"
        "  --quiet            only print programs with diagnostics\n"
        "  --list-checks      print every diagnostic code and exit\n");
}

void
listChecks()
{
    static constexpr LintCode codes[] = {
        LintCode::BadOpcode,      LintCode::BadRegField,
        LintCode::X0Write,        LintCode::BadBranchTarget,
        LintCode::FallOffEnd,     LintCode::UninitRead,
        LintCode::UninitFlags,    LintCode::NoExitLoop,
        LintCode::Unreachable,    LintCode::DeadWrite,
        LintCode::DeadCompare,    LintCode::RedundantBranch,
        LintCode::ChainTooDeep,   LintCode::IrregularRootInLoop,
        LintCode::InvariantAddressReload,
    };
    for (const LintCode c : codes) {
        std::printf("%-8s %s\n", lintCodeIsError(c) ? "error" : "warning",
                    lintCodeName(c));
    }
}

/** JSON string escaping (control chars, quotes, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
jsonIndexList(std::string &out, const std::vector<std::size_t> &v)
{
    out += "[";
    for (std::size_t i = 0; i < v.size(); i++) {
        if (i)
            out += ", ";
        out += std::to_string(v[i]);
    }
    out += "]";
}

/** One program's results, gathered before rendering. */
struct ProgramResult
{
    std::string name;
    std::size_t instructions = 0;
    LintReport lint;
    bool haveChains = false;
    ChainReport chains;

    std::size_t
    errorCount() const
    {
        return lint.errorCount() + (haveChains ? chains.errorCount() : 0);
    }
    std::size_t
    warningCount() const
    {
        return lint.warningCount() +
               (haveChains ? chains.warningCount() : 0);
    }
};

void
jsonDiag(std::string &out, const std::string &indent, const LintDiag &d)
{
    out += indent + "{\"code\": \"" + lintCodeName(d.code) +
           "\", \"severity\": \"" + d.severity() +
           "\", \"index\": " + std::to_string(d.index) +
           ", \"message\": \"" + jsonEscape(d.message) + "\"}";
}

std::string
renderJson(const std::vector<ProgramResult> &results)
{
    std::string out;
    out += "{\n  \"schema\": \"svrsim-lint-v1\",\n  \"programs\": [\n";
    for (std::size_t pi = 0; pi < results.size(); pi++) {
        const ProgramResult &r = results[pi];
        out += "    {\n";
        out += "      \"name\": \"" + jsonEscape(r.name) + "\",\n";
        out += "      \"instructions\": " +
               std::to_string(r.instructions) + ",\n";
        out += "      \"errors\": " + std::to_string(r.errorCount()) +
               ",\n";
        out += "      \"warnings\": " + std::to_string(r.warningCount()) +
               ",\n";
        out += "      \"diagnostics\": [";
        bool first = true;
        for (const LintDiag &d : r.lint.diags) {
            out += first ? "\n" : ",\n";
            first = false;
            jsonDiag(out, "        ", d);
        }
        if (r.haveChains) {
            for (const LintDiag &d : r.chains.diags) {
                out += first ? "\n" : ",\n";
                first = false;
                jsonDiag(out, "        ", d);
            }
        }
        out += first ? "]" : "\n      ]";
        if (r.haveChains) {
            const ChainReport &c = r.chains;
            out += ",\n      \"chains\": {\n";
            out += "        \"loops\": " + std::to_string(c.loopCount) +
                   ",\n";
            out += "        \"irreducibleEdges\": " +
                   std::to_string(c.irreducibleEdgeCount) + ",\n";
            out += "        \"memOps\": [";
            bool fm = true;
            for (const MemOpInfo &m : c.memOps) {
                out += fm ? "\n" : ",\n";
                fm = false;
                out += "          {\"index\": " + std::to_string(m.index) +
                       ", \"class\": \"" + memOpClassName(m.cls) +
                       "\", \"load\": " + (m.isLoad ? "true" : "false") +
                       ", \"loop\": " + std::to_string(m.loop);
                if (m.cls == MemOpClass::StrideRooted) {
                    out += ", \"strideKnown\": " +
                           std::string(m.strideKnown ? "true" : "false") +
                           ", \"stride\": " + std::to_string(m.stride);
                }
                if (m.cls == MemOpClass::ChainDependent) {
                    out += ", \"depth\": " + std::to_string(m.depth) +
                           ", \"root\": " + std::to_string(m.rootIndex);
                }
                out += ", \"disasm\": \"" + jsonEscape(m.disasm) + "\"}";
            }
            out += fm ? "]" : "\n        ]";
            out += ",\n        \"chainList\": [";
            bool fc = true;
            for (const ChainInfo &ch : c.chains) {
                out += fc ? "\n" : ",\n";
                fc = false;
                out += "          {\"root\": " +
                       std::to_string(ch.rootIndex) +
                       ", \"loop\": " + std::to_string(ch.loop) +
                       ", \"strideKnown\": " +
                       (ch.strideKnown ? "true" : "false") +
                       ", \"stride\": " + std::to_string(ch.stride) +
                       ", \"depth\": " + std::to_string(ch.depth) +
                       ", \"loads\": ";
                jsonIndexList(out, ch.chainLoads);
                out += ", \"slice\": ";
                jsonIndexList(out, ch.slice);
                out += ", \"members\": " +
                       std::to_string(ch.members.size()) +
                       ", \"vectorizable\": " +
                       (ch.vectorizable ? "true" : "false") +
                       ", \"verdict\": \"" + jsonEscape(ch.verdict) +
                       "\"}";
            }
            out += fc ? "]" : "\n        ]";
            out += "\n      }";
        }
        out += "\n    }";
        out += pi + 1 < results.size() ? ",\n" : "\n";
    }
    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (const ProgramResult &r : results) {
        errors += r.errorCount();
        warnings += r.warningCount();
    }
    out += "  ],\n  \"totals\": {\"programs\": " +
           std::to_string(results.size()) +
           ", \"errors\": " + std::to_string(errors) +
           ", \"warnings\": " + std::to_string(warnings) + "}\n}\n";
    return out;
}

} // namespace

int
main(int argc, char **argv)
try {
    std::vector<std::string> names;
    std::string suite;
    bool all = false;
    bool dump = false;
    bool werror = false;
    bool quiet = false;
    bool chains = false;
    bool oracle = false;
    bool json = false;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--suite") {
            suite = next();
        } else if (arg == "--workload") {
            names.push_back(next());
        } else if (arg == "--chains") {
            chains = true;
        } else if (arg == "--oracle") {
            oracle = chains = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--dump") {
            dump = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list-checks") {
            listChecks();
            return 0;
        } else {
            usage();
            fatal("unknown argument '%s'", arg.c_str());
        }
    }

    setInformEnabled(false);

    std::vector<WorkloadSpec> specs;
    if (all) {
        specs = fullSuite();
        for (const auto &w : specSuite())
            specs.push_back(w);
    } else if (!suite.empty()) {
        specs = suiteByName(suite);
    }
    for (const std::string &n : names)
        specs.push_back(findWorkload(n));
    if (specs.empty()) {
        usage();
        fatal("nothing to lint: pass --all, --suite, or --workload");
    }

    std::vector<ProgramResult> results;
    results.reserve(specs.size());
    for (const WorkloadSpec &spec : specs) {
        const WorkloadInstance w = spec.make();
        ProgramResult r;
        r.name = spec.name;
        r.instructions = w.program->size();
        r.lint = verifyProgram(*w.program);
        if (chains) {
            r.haveChains = true;
            r.chains = analyzeChains(*w.program);
        }
        results.push_back(std::move(r));
        if (dump && !json)
            std::fputs(disassemble(*w.program).c_str(), stdout);
    }

    if (json) {
        std::fputs(renderJson(results).c_str(), stdout);
    } else {
        for (const ProgramResult &r : results) {
            if (!r.lint.diags.empty()) {
                std::fputs(r.lint.format().c_str(), stdout);
            } else if (!quiet) {
                std::printf("%s: clean (%zu instructions)\n",
                            r.name.c_str(), r.instructions);
            }
            if (r.haveChains) {
                if (oracle) {
                    // Seed table: one "program index stride" per
                    // known-stride chain root (what --oracle runs
                    // feed to SvrParams::oracleSeeds).
                    for (const ChainInfo &c : r.chains.chains) {
                        if (c.strideKnown) {
                            std::printf("seed %s %zu %lld\n",
                                        r.name.c_str(), c.rootIndex,
                                        static_cast<long long>(c.stride));
                        }
                    }
                } else if (!quiet || !r.chains.diags.empty()) {
                    std::fputs(r.chains.format().c_str(), stdout);
                }
            }
        }
    }

    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (const ProgramResult &r : results) {
        errors += r.errorCount();
        warnings += r.warningCount();
    }
    if (!json) {
        std::printf(
            "linted %zu program(s): %zu error(s), %zu warning(s)\n",
            specs.size(), errors, warnings);
    }
    return errors > 0 || (werror && warnings > 0) ? 1 : 0;
} catch (const SimError &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
