/**
 * @file
 * bench_report — standalone sim-speed measurement (no google-benchmark
 * dependency). Runs every core model over the camel kernel, times the
 * hottest primitives, and writes the results as BENCH_simspeed.json so
 * sim-speed can be tracked over time alongside the repo.
 *
 * Usage:
 *   bench_report [--quick] [--sampling] [--out PATH]
 *   bench_report --regress [--baseline PATH] [--threshold PCT] [--quick]
 *                [--out PATH]
 *   bench_report --chains [--quick] [--out PATH]
 *
 *   --quick     small windows / single repetition (CI smoke)
 *   --sampling  measure sampled-vs-full accuracy and speedup instead,
 *               writing BENCH_sampling.json: each core model runs the
 *               same region once in full detail and once sampled
 *               (fast-forward + warmup + measured window per period),
 *               reporting the CPI error and wall-clock speedup
 *   --out       output path (default: BENCH_simspeed.json, or
 *               BENCH_sampling.json with --sampling)
 *   --regress   regression gate: re-measure the timing cores and exit
 *               nonzero if any core's Msimips fell more than the
 *               threshold (default 15%) below the committed
 *               BENCH_simspeed.json. Opt-in in CI (wall-clock
 *               measurements are load-sensitive):
 *               `ctest -C bench-regress`. With --out, the per-core
 *               comparison (baseline/measured/delta Msimips) is also
 *               written as machine-readable JSON for CI dashboards.
 *   --baseline  baseline JSON for --regress (default:
 *               BENCH_simspeed.json next to the current directory)
 *   --threshold allowed Msimips drop in percent for --regress
 *   --chains    static-vs-dynamic chain coverage matrix: cross-validate
 *               the static dependence-chain oracle against the SVR
 *               engine's recorded chain log for every quick-suite
 *               workload under SVR16 and SVR64, printing the coverage
 *               table (and writing it as JSON with --out). Dynamic
 *               columns need an SVR_ARCHCHECK build; in Release the
 *               static columns still print. Exits nonzero on any
 *               cross-validation violation.
 *
 * The committed artifacts are regenerated with the SVR_BENCH_JSON and
 * SVR_BENCH_SAMPLING_JSON targets, e.g.
 * `cmake --build build --target SVR_BENCH_JSON`.
 */

#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/chain_xcheck.hh"
#include "common/error.hh"
#include "common/io.hh"
#include "common/logging.hh"
#include "core/executor.hh"
#include "mem/cache.hh"
#include "mem/functional_memory.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/hpcdb_kernels.hh"
#include "workloads/suites.hh"
#include "workloads/workload.hh"

using namespace svr;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    const std::chrono::duration<double> d = Clock::now() - t0;
    return d.count();
}

/** The same kernel bench/micro_simspeed.cc measures (never stores). */
WorkloadInstance
benchWorkload()
{
    HpcDbSizes s;
    s.camelIndex = 1 << 18;
    s.camelTable = 1 << 19;
    return makeCamel(s);
}

struct CoreSpeed
{
    std::string label;
    double millis = 0.0;   //!< best-of-reps timing-loop wall time
    double msimips = 0.0;  //!< simulated Minstructions per host second
};

/** Best-of-@p reps simulation of @p config over @p w. */
CoreSpeed
measureCore(SimConfig config, const WorkloadInstance &w, std::uint64_t window,
            unsigned reps)
{
    config.maxInstructions = window;
    CoreSpeed out;
    out.label = config.label;
    for (unsigned r = 0; r < reps; r++) {
        const SimResult res = simulate(config, w);
        if (out.millis == 0.0 || res.hostMillis < out.millis) {
            out.millis = res.hostMillis;
            out.msimips = res.hostMsimips();
        }
    }
    return out;
}

/** ns per call over @p iters invocations of @p fn (best of @p reps). */
template <typename Fn>
double
nsPerCall(unsigned reps, std::uint64_t iters, Fn &&fn)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; r++) {
        const auto t0 = Clock::now();
        for (std::uint64_t i = 0; i < iters; i++)
            fn(i);
        const double ns = secondsSince(t0) * 1e9 /
                          static_cast<double>(iters);
        if (best == 0.0 || ns < best)
            best = ns;
    }
    return best;
}

/**
 * ns per functionally executed instruction through the threaded-code
 * dispatch loop (Executor::run batches — the path the sampled-sim
 * checkpoint fast-forward and functional warmup actually ride; the
 * per-DynInst step() entry point adds a fixed call/materialize cost on
 * top and is exercised by every timing-core measurement above).
 */
double
functionalStepNs(const WorkloadInstance &w, unsigned reps,
                 std::uint64_t iters)
{
    Executor exec(*w.program, *w.mem);
    double best = 0.0;
    for (unsigned r = 0; r < reps; r++) {
        const auto t0 = Clock::now();
        std::uint64_t left = iters;
        while (left > 0) {
            if (exec.halted())
                exec.restart();
            left -= exec.run(left);
        }
        const double ns =
            secondsSince(t0) * 1e9 / static_cast<double>(iters);
        if (best == 0.0 || ns < best)
            best = ns;
    }
    return best;
}

double
functionalReadNs(unsigned reps, std::uint64_t iters)
{
    FunctionalMemory mem;
    constexpr std::uint64_t tableBytes = 8 << 20;
    const Addr base = mem.alloc(tableBytes);
    for (Addr off = 0; off < tableBytes; off += 8)
        mem.write(base + off, off, 8);
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    volatile std::uint64_t sink = 0;
    return nsPerCall(reps, iters, [&](std::uint64_t) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        sink = mem.read(base + ((x >> 24) & (tableBytes - 1) & ~Addr(7)), 8);
    });
}

double
functionalWriteNs(unsigned reps, std::uint64_t iters)
{
    FunctionalMemory mem;
    constexpr std::uint64_t tableBytes = 8 << 20;
    const Addr base = mem.alloc(tableBytes);
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    return nsPerCall(reps, iters, [&](std::uint64_t) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        mem.write(base + ((x >> 24) & (tableBytes - 1) & ~Addr(7)), x, 8);
    });
}

double
cacheLookupNs(unsigned reps, std::uint64_t iters, Addr working_set)
{
    Cache cache(CacheParams{"bench", 64 * 1024, 4, 3, 16});
    for (Addr a = 0; a < 64 * 1024; a += 64)
        cache.insert(a, PrefetchOrigin::None, false);
    Addr a = 0;
    volatile bool sink = false;
    return nsPerCall(reps, iters, [&](std::uint64_t) {
        bool first = false;
        PrefetchOrigin origin;
        sink = cache.lookup(a, true, first, origin);
        a = (a + 64) & (working_set - 1);
    });
}

double
mshrAllocDrainNs(unsigned reps, std::uint64_t iters)
{
    Cache cache(CacheParams{"bench", 64 * 1024, 4, 3, 16});
    Cycle now = 0;
    Addr line = 0;
    return nsPerCall(reps, iters, [&](std::uint64_t) {
        const Cycle start = cache.mshrAvailable(now);
        cache.allocateMshr(line, start, start + 40);
        cache.drainCompletedMisses(now, [](const EvictResult &) {});
        now += 10;
        line = (line + 64) & ((1 << 20) - 1);
    });
}

struct SamplingRow
{
    std::string label;
    double fullCpi = 0.0;
    double sampledCpi = 0.0;
    double errorPct = 0.0;   //!< |sampled - full| / full, in percent
    double speedup = 0.0;    //!< full wall time / sampled wall time
    double ci95 = 0.0;       //!< 1.96 x stderr of the sampled CPI
    std::uint64_t windows = 0;
};

/**
 * One full-detail run and one sampled run of @p config over the same
 * @p region of @p w, compared on CPI and wall clock.
 */
SamplingRow
measureSampling(SimConfig config, const WorkloadInstance &w,
                std::uint64_t region, const SamplingParams &sp)
{
    config.maxInstructions = region;
    SamplingRow row;
    row.label = config.label;

    config.sampling = {};
    const SimResult full = simulate(config, w);
    row.fullCpi = full.cpi();

    config.sampling = sp;
    const SimResult sampled = simulate(config, w);
    row.sampledCpi = sampled.cpi();
    row.errorPct = row.fullCpi > 0.0
                       ? 100.0 * std::abs(row.sampledCpi - row.fullCpi) /
                             row.fullCpi
                       : 0.0;
    row.speedup = sampled.hostMillis > 0.0
                      ? full.hostMillis / sampled.hostMillis
                      : 0.0;
    row.ci95 = 1.96 * sampled.cpiStderr;
    row.windows = sampled.sampleWindows;
    return row;
}

/** printf-append onto a string (the JSON is built then written atomically). */
void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

/**
 * --sampling mode: sampled-vs-full comparison into BENCH_sampling.json.
 * Paper-scale parameters by default (a 20M-instruction region sampled
 * at 2M periods), scaled down 100x under --quick for CI smoke.
 */
int
runSamplingBench(bool quick, const std::string &out_path)
{
    const std::uint64_t region = quick ? 200000 : 20000000;
    SamplingParams sp;
    sp.sampleEvery = quick ? 20000 : 2000000;
    sp.sampleWindow = quick ? 2000 : 20000;
    sp.warmup = quick ? 1000 : 10000;

    // Paper-scale camel (default sizes): the small benchWorkload()
    // variant leaves too much of its footprint cache-resident, which
    // amplifies the cold-cache bias of each sample window far beyond
    // what the paper-scale regions the sampler targets ever see.
    const WorkloadInstance w = makeCamel();
    const std::vector<SimConfig> configs = {
        presets::inorder(), presets::impCore(), presets::outOfOrder(),
        presets::svrCore(16), presets::svrCore(64)};

    std::vector<SamplingRow> rows;
    for (const auto &config : configs) {
        rows.push_back(measureSampling(config, w, region, sp));
        const SamplingRow &r = rows.back();
        std::fprintf(stderr,
                     "  %-8s full CPI %.4f  sampled %.4f +/- %.4f  "
                     "err %.2f%%  speedup %.1fx  (%llu windows)\n",
                     r.label.c_str(), r.fullCpi, r.sampledCpi, r.ci95,
                     r.errorPct, r.speedup,
                     static_cast<unsigned long long>(r.windows));
    }

    std::string json;
    appendf(json, "{\n");
    appendf(json, "  \"schema\": \"svrsim-bench-sampling-v1\",\n");
    appendf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
    appendf(json, "  \"workload\": \"camel\",\n");
    appendf(json, "  \"region_instructions\": %llu,\n",
            static_cast<unsigned long long>(region));
    appendf(json, "  \"sample_every\": %llu,\n",
            static_cast<unsigned long long>(sp.sampleEvery));
    appendf(json, "  \"sample_window\": %llu,\n",
            static_cast<unsigned long long>(sp.sampleWindow));
    appendf(json, "  \"warmup\": %llu,\n",
            static_cast<unsigned long long>(sp.warmup));
    appendf(json, "  \"configs\": [\n");
    for (std::size_t i = 0; i < rows.size(); i++) {
        const SamplingRow &r = rows[i];
        appendf(json,
                "    {\"label\": \"%s\", \"full_cpi\": %.6f, "
                "\"sampled_cpi\": %.6f, \"cpi_ci95\": %.6f, "
                "\"cpi_error_pct\": %.3f, \"speedup\": %.2f, "
                "\"sample_windows\": %llu}%s\n",
                r.label.c_str(), r.fullCpi, r.sampledCpi, r.ci95,
                r.errorPct, r.speedup,
                static_cast<unsigned long long>(r.windows),
                i + 1 < rows.size() ? "," : "");
    }
    appendf(json, "  ]\n");
    appendf(json, "}\n");

    writeFileAtomic(out_path, json, FaultPlan::fromEnv());
    std::fprintf(stderr, "bench_report: wrote %s\n", out_path.c_str());
    return 0;
}

/**
 * Pull the per-core {label, msimips} rows out of a bench JSON. This is
 * a scanner over the exact format this tool writes (one core object
 * per line), not a general JSON parser — good enough to read back our
 * own committed artifact.
 */
std::vector<CoreSpeed>
parseBaselineCores(const std::string &text)
{
    std::vector<CoreSpeed> rows;
    std::size_t pos = 0;
    while ((pos = text.find("{\"label\": \"", pos)) != std::string::npos) {
        pos += std::strlen("{\"label\": \"");
        const std::size_t end = text.find('"', pos);
        if (end == std::string::npos)
            break;
        CoreSpeed row;
        row.label = text.substr(pos, end - pos);
        const std::size_t mpos = text.find("\"msimips\": ", end);
        if (mpos == std::string::npos)
            break;
        row.msimips =
            std::strtod(text.c_str() + mpos + std::strlen("\"msimips\": "),
                        nullptr);
        rows.push_back(std::move(row));
        pos = end;
    }
    return rows;
}

/** One core's baseline-vs-fresh comparison (--regress). */
struct RegressRow
{
    std::string label;
    double baseline = 0.0; //!< committed Msimips (0 = no baseline row)
    double measured = 0.0;
    double deltaPct = 0.0; //!< (measured - baseline) / baseline * 100
    double floor = 0.0;    //!< baseline scaled by the threshold
    bool regressed = false;
};

/**
 * --regress mode: re-measure the timing cores and compare against the
 * committed baseline. Exit 0 if every core is within @p threshold_pct
 * of its baseline Msimips, 1 on a regression, 2 on a bad baseline.
 * With @p out_path, the comparison is also written as machine-readable
 * JSON (per-core baseline/measured/delta) for CI dashboards.
 */
int
runRegressCheck(bool quick, const std::string &baseline_path,
                double threshold_pct, const std::string &out_path)
{
    const std::string text = readFile(baseline_path);
    const std::vector<CoreSpeed> baseline = parseBaselineCores(text);
    if (baseline.empty()) {
        std::fprintf(stderr, "bench_report: no core rows in %s\n",
                     baseline_path.c_str());
        return 2;
    }

    // Measure with the same window the baseline was measured with
    // (Msimips depends on the window: shorter windows amortize less
    // warmup), and more repetitions than a normal measurement —
    // best-of-N converges toward unloaded-machine speed, which is
    // what the committed baseline records.
    std::uint64_t window = 100000;
    if (const std::size_t wpos = text.find("\"window_instructions\": ");
        wpos != std::string::npos) {
        window = std::strtoull(
            text.c_str() + wpos + std::strlen("\"window_instructions\": "),
            nullptr, 10);
    }
    const unsigned reps = quick ? 2 : 5;
    const WorkloadInstance w = benchWorkload();
    const std::vector<SimConfig> configs = {
        presets::inorder(), presets::impCore(), presets::outOfOrder(),
        presets::svrCore(16), presets::svrCore(64)};

    std::vector<RegressRow> rows;
    bool failed = false;
    for (const auto &config : configs) {
        const CoreSpeed fresh = measureCore(config, w, window, reps);
        const CoreSpeed *base = nullptr;
        for (const CoreSpeed &b : baseline) {
            if (b.label == fresh.label)
                base = &b;
        }
        RegressRow row;
        row.label = fresh.label;
        row.measured = fresh.msimips;
        if (!base) {
            // A core model missing from the committed file is stale
            // tooling, not a perf regression; flag but keep comparing.
            std::fprintf(stderr, "  %-8s %8.2f Msimips  (no baseline)\n",
                         fresh.label.c_str(), fresh.msimips);
            rows.push_back(std::move(row));
            continue;
        }
        row.baseline = base->msimips;
        row.floor = base->msimips * (1.0 - threshold_pct / 100.0);
        row.deltaPct = base->msimips > 0.0
                           ? 100.0 * (fresh.msimips - base->msimips) /
                                 base->msimips
                           : 0.0;
        row.regressed = fresh.msimips < row.floor;
        failed = failed || row.regressed;
        std::fprintf(stderr,
                     "  %-8s %8.2f Msimips  baseline %8.2f  "
                     "floor %8.2f  %s\n",
                     row.label.c_str(), row.measured, row.baseline,
                     row.floor, row.regressed ? "REGRESSED" : "ok");
        rows.push_back(std::move(row));
    }
    std::fprintf(stderr, "bench_report: regression check %s "
                 "(threshold %.0f%%, baseline %s)\n",
                 failed ? "FAILED" : "passed", threshold_pct,
                 baseline_path.c_str());

    if (!out_path.empty()) {
        std::string json;
        appendf(json, "{\n");
        appendf(json, "  \"schema\": \"svrsim-bench-regress-v1\",\n");
        appendf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
        appendf(json, "  \"threshold_pct\": %.1f,\n", threshold_pct);
        appendf(json, "  \"window_instructions\": %llu,\n",
                static_cast<unsigned long long>(window));
        appendf(json, "  \"status\": \"%s\",\n",
                failed ? "regressed" : "ok");
        appendf(json, "  \"cores\": [\n");
        for (std::size_t i = 0; i < rows.size(); i++) {
            const RegressRow &r = rows[i];
            appendf(json,
                    "    {\"label\": \"%s\", \"baseline_msimips\": %.3f, "
                    "\"measured_msimips\": %.3f, \"delta_pct\": %.2f, "
                    "\"floor_msimips\": %.3f, \"status\": \"%s\"}%s\n",
                    r.label.c_str(), r.baseline, r.measured, r.deltaPct,
                    r.floor,
                    r.baseline == 0.0 ? "no-baseline"
                    : r.regressed     ? "regressed"
                                      : "ok",
                    i + 1 < rows.size() ? "," : "");
        }
        appendf(json, "  ]\n");
        appendf(json, "}\n");
        writeFileAtomic(out_path, json, FaultPlan::fromEnv());
        std::fprintf(stderr, "bench_report: wrote %s\n",
                     out_path.c_str());
    }
    return failed ? 1 : 0;
}

/**
 * --chains: the static-vs-dynamic chain coverage matrix. Every
 * quick-suite workload is analyzed statically and (in SVR_ARCHCHECK
 * builds) replayed under SVR16 and SVR64 with the engine's chain log
 * enabled; the table reports how many dynamic chain roots the static
 * oracle predicted as stride-rooted and how many predicted chains
 * actually fired. This is the table quoted in README/ARCHITECTURE.
 */
int
runChainsCoverage(bool quick, const std::string &out_path)
{
    const std::uint64_t window = quick ? 20000 : 100000;
    const bool dynamic = chainRecordingEnabled();

    if (!dynamic)
        std::fprintf(stderr,
                     "bench_report: chain recording compiled out "
                     "(Release); dynamic columns are static-only — "
                     "use the fastsim-check preset for the full "
                     "matrix\n");

    struct Cell
    {
        std::string workload;
        std::string config;
        std::size_t staticChains;
        std::size_t staticTriggered;
        std::size_t dynRoots;
        std::size_t covered;
        std::size_t irregular;
        double coverage;
        double precision;
        std::size_t violations;
    };
    std::vector<Cell> cells;
    bool failed = false;

    std::printf("%-10s %-6s %7s %8s %8s %9s %9s %9s\n", "workload",
                "config", "chains", "dynroots", "covered", "irreg",
                "coverage", "precision");
    for (unsigned n : {16u, 64u}) {
        SimConfig config = presets::svrCore(n);
        config.maxInstructions = window;
        for (const WorkloadSpec &spec : quickSuite()) {
            Cell c{};
            c.workload = spec.name;
            c.config = config.label;
            if (dynamic) {
                const ChainCrossCheck res =
                    crossValidateChains(config, spec);
                c.staticChains = res.staticChains;
                c.staticTriggered = res.staticChainsTriggered;
                c.dynRoots = res.dynRoots;
                c.covered = res.coveredStrideRooted;
                c.irregular = res.irregularRoots;
                c.coverage = res.coverage();
                c.precision = res.precision();
                c.violations = res.violations.size();
                for (const std::string &v : res.violations)
                    std::fprintf(stderr, "  violation: %s/%s: %s\n",
                                 spec.name.c_str(),
                                 config.label.c_str(), v.c_str());
                failed = failed || !res.violations.empty();
            } else {
                const WorkloadInstance inst = spec.make();
                const ChainReport report =
                    analyzeChains(*inst.program);
                c.staticChains = report.chains.size();
                c.coverage = 1.0;
                c.precision = 0.0;
            }
            std::printf("%-10s %-6s %7zu %8zu %8zu %9zu %8.0f%% "
                        "%8.0f%%\n",
                        c.workload.c_str(), c.config.c_str(),
                        c.staticChains, c.dynRoots, c.covered,
                        c.irregular, c.coverage * 100.0,
                        c.precision * 100.0);
            cells.push_back(c);
        }
    }

    if (!out_path.empty()) {
        std::string json;
        appendf(json, "{\n");
        appendf(json, "  \"schema\": \"svrsim-bench-chains-v1\",\n");
        appendf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
        appendf(json, "  \"dynamic\": %s,\n", dynamic ? "true" : "false");
        appendf(json, "  \"window_instructions\": %llu,\n",
                static_cast<unsigned long long>(window));
        appendf(json, "  \"cells\": [\n");
        for (std::size_t i = 0; i < cells.size(); i++) {
            const Cell &c = cells[i];
            appendf(json,
                    "    {\"workload\": \"%s\", \"config\": \"%s\", "
                    "\"static_chains\": %zu, "
                    "\"static_triggered\": %zu, \"dyn_roots\": %zu, "
                    "\"covered_stride_rooted\": %zu, "
                    "\"irregular_roots\": %zu, \"coverage\": %.4f, "
                    "\"precision\": %.4f, \"violations\": %zu}%s\n",
                    c.workload.c_str(), c.config.c_str(),
                    c.staticChains,
                    c.staticTriggered, c.dynRoots, c.covered,
                    c.irregular, c.coverage, c.precision, c.violations,
                    i + 1 < cells.size() ? "," : "");
        }
        appendf(json, "  ]\n");
        appendf(json, "}\n");
        writeFileAtomic(out_path, json, FaultPlan::fromEnv());
        std::fprintf(stderr, "bench_report: wrote %s\n",
                     out_path.c_str());
    }
    return failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
try {
    bool quick = false;
    bool sampling = false;
    bool regress = false;
    bool chains = false;
    std::string out_path;
    std::string baseline_path = "BENCH_simspeed.json";
    double threshold_pct = 15.0;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--sampling") == 0) {
            sampling = true;
        } else if (std::strcmp(argv[i], "--regress") == 0) {
            regress = true;
        } else if (std::strcmp(argv[i], "--chains") == 0) {
            chains = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--threshold") == 0 &&
                   i + 1 < argc) {
            threshold_pct = std::strtod(argv[++i], nullptr);
        } else {
            std::fprintf(stderr,
                         "usage: bench_report [--quick] [--sampling] "
                         "[--out PATH]\n"
                         "       bench_report --regress [--baseline PATH] "
                         "[--threshold PCT] [--quick]\n"
                         "       bench_report --chains [--quick] "
                         "[--out PATH]\n");
            return 1;
        }
    }
    // --regress/--chains only write JSON when --out is given explicitly.
    if (out_path.empty() && !regress && !chains)
        out_path = sampling ? "BENCH_sampling.json" : "BENCH_simspeed.json";

    setInformEnabled(false);

    if (chains)
        return runChainsCoverage(quick, out_path);
    if (regress)
        return runRegressCheck(quick, baseline_path, threshold_pct,
                               out_path);
    if (sampling)
        return runSamplingBench(quick, out_path);

    const std::uint64_t window = quick ? 20000 : 100000;
    const unsigned reps = quick ? 1 : 3;
    const std::uint64_t prim_iters = quick ? 200000 : 2000000;

    const WorkloadInstance w = benchWorkload();

    std::vector<SimConfig> configs = {presets::inorder(), presets::impCore(),
                                      presets::outOfOrder(),
                                      presets::svrCore(16),
                                      presets::svrCore(64)};
    std::vector<CoreSpeed> cores;
    for (const auto &config : configs) {
        cores.push_back(measureCore(config, w, window, reps));
        std::fprintf(stderr, "  %-8s %8.2f ms  %8.2f Msimips\n",
                     cores.back().label.c_str(), cores.back().millis,
                     cores.back().msimips);
    }

    const double step_ns = functionalStepNs(w, reps, prim_iters);
    const double read_ns = functionalReadNs(reps, prim_iters);
    const double write_ns = functionalWriteNs(reps, prim_iters);
    const double hot_ns = cacheLookupNs(reps, prim_iters, 8 * 64);
    const double cyc_ns = cacheLookupNs(reps, prim_iters, 64 * 1024);
    const double mshr_ns = mshrAllocDrainNs(reps, prim_iters);
    std::fprintf(stderr,
                 "  step %.1f ns, read %.1f ns, write %.1f ns, "
                 "lookup hot/cyclic %.1f/%.1f ns, mshr %.1f ns\n",
                 step_ns, read_ns, write_ns, hot_ns, cyc_ns, mshr_ns);

    std::string json;
    appendf(json, "{\n");
    appendf(json, "  \"schema\": \"svrsim-bench-simspeed-v1\",\n");
    appendf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
    appendf(json, "  \"workload\": \"camel\",\n");
    appendf(json, "  \"window_instructions\": %llu,\n",
            static_cast<unsigned long long>(window));
    appendf(json, "  \"cores\": [\n");
    for (std::size_t i = 0; i < cores.size(); i++) {
        appendf(json,
                "    {\"label\": \"%s\", \"timing_millis\": %.3f, "
                "\"msimips\": %.3f}%s\n",
                cores[i].label.c_str(), cores[i].millis,
                cores[i].msimips, i + 1 < cores.size() ? "," : "");
    }
    appendf(json, "  ],\n");
    appendf(json, "  \"primitives_ns\": {\n");
    appendf(json, "    \"functional_step\": %.3f,\n", step_ns);
    appendf(json, "    \"functional_read64\": %.3f,\n", read_ns);
    appendf(json, "    \"functional_write64\": %.3f,\n", write_ns);
    appendf(json, "    \"cache_lookup_hot\": %.3f,\n", hot_ns);
    appendf(json, "    \"cache_lookup_cyclic\": %.3f,\n", cyc_ns);
    appendf(json, "    \"mshr_alloc_drain\": %.3f\n", mshr_ns);
    appendf(json, "  }\n");
    appendf(json, "}\n");

    // Atomic + checked: a failed disk never leaves a torn or silently
    // truncated benchmark artifact behind.
    writeFileAtomic(out_path, json, FaultPlan::fromEnv());
    std::fprintf(stderr, "bench_report: wrote %s\n", out_path.c_str());
    return 0;
} catch (const SimError &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
