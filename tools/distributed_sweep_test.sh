#!/usr/bin/env bash
# End-to-end test for the distributed sweep fabric:
#
#   1. serial reference run      -> JSON + CSV artifacts, no journal left
#   2. --workers 3               -> both artifacts byte-identical to serial
#   3. --workers 3 + SVRSIM_FAULT=kill@.. -> one worker SIGKILLs itself
#                                   mid-sweep; the lease is reassigned /
#                                   the worker respawned and the artifact
#                                   still matches byte for byte
#   4. serial crash + fabric --resume -> journaled cells restored into
#                                   the fabric run, artifact identical
#   5. --shards                  -> a journal shard from another run is
#                                   merged as completed cells
#   6. tcp loopback              -> same result over the TCP transport
#   7. fail-fast worker error    -> coordinator aborts with exit 1 and
#                                   the worker's error code, no artifact
#   8. coordinator SIGKILL + restart -> SVRSIM_FAULT=ckill@.. kills the
#                                   coordinator right after it journals
#                                   a cell; a restarted coordinator on
#                                   the same endpoint resumes from the
#                                   journal and the artifact still
#                                   matches byte for byte
#
# Usage: distributed_sweep_test.sh <svrsim_sweep-binary> <scratch-dir>
set -eu

SWEEP=$1
DIR=$2
ARGS="--suite quick --configs ino,svr16 --window 10000"

fail() { echo "FAIL: $*" >&2; exit 1; }

rm -rf "$DIR"
mkdir -p "$DIR"

echo "== step 1: serial reference artifacts (JSON and CSV)"
"$SWEEP" $ARGS --json --out "$DIR/ref.json" 2> /dev/null
"$SWEEP" $ARGS --out "$DIR/ref.csv" 2> /dev/null
[ -f "$DIR/ref.json" ] || fail "serial run wrote no JSON artifact"
[ ! -f "$DIR/ref.json.journal" ] || fail "serial run left its journal"

echo "== step 2: 3-worker fabric run matches byte for byte"
"$SWEEP" $ARGS --json --workers 3 --out "$DIR/fab.json" 2> "$DIR/fab.log"
cmp "$DIR/ref.json" "$DIR/fab.json" ||
    fail "fabric JSON differs from the serial run"
[ ! -f "$DIR/fab.json.journal" ] || fail "fabric run left its journal"
grep -q "worker 3 joined" "$DIR/fab.log" ||
    fail "fabric run did not get 3 workers"
"$SWEEP" $ARGS --workers 3 --out "$DIR/fab.csv" 2> /dev/null
cmp "$DIR/ref.csv" "$DIR/fab.csv" ||
    fail "fabric CSV differs from the serial run"

echo "== step 3: worker SIGKILLed mid-sweep, output still identical"
SVRSIM_FAULT='kill@Camel/SVR16' \
    "$SWEEP" $ARGS --json --workers 3 --out "$DIR/kill.json" \
    2> "$DIR/kill.log"
grep -q "injected kill" "$DIR/kill.log" ||
    fail "kill fault did not fire in any worker"
grep -Eq "respawning|reassigning" "$DIR/kill.log" ||
    fail "coordinator never noticed the dead worker"
cmp "$DIR/ref.json" "$DIR/kill.json" ||
    fail "artifact differs after a worker death"

echo "== step 4: fabric --resume from a serial crash journal"
rc=0
SVRSIM_FAULT='kill@CC_TW/SVR16' \
    "$SWEEP" $ARGS --json --out "$DIR/res.json" 2> /dev/null || rc=$?
[ "$rc" -ne 0 ] || fail "killed serial run exited 0"
[ -f "$DIR/res.json.journal" ] || fail "killed run left no journal"
"$SWEEP" $ARGS --json --workers 3 --resume --out "$DIR/res.json" \
    2> "$DIR/res.log"
grep -q "restored from journal" "$DIR/res.log" ||
    fail "fabric resume restored nothing"
cmp "$DIR/ref.json" "$DIR/res.json" ||
    fail "fabric-resumed artifact differs from the serial run"

echo "== step 5: journal shard merged as completed cells"
SVRSIM_FAULT='kill@CC_TW/SVR16' \
    "$SWEEP" $ARGS --json --out "$DIR/shard.json" 2> /dev/null || true
mv "$DIR/shard.json.journal" "$DIR/shard.journal"
"$SWEEP" $ARGS --json --workers 2 --shards "$DIR/shard.journal" \
    --out "$DIR/merged.json" 2> "$DIR/shard.log"
grep -q "restored from" "$DIR/shard.log" || fail "shard restored nothing"
cmp "$DIR/ref.json" "$DIR/merged.json" ||
    fail "shard-merged artifact differs from the serial run"

echo "== step 6: tcp loopback transport"
"$SWEEP" $ARGS --json --workers 2 --coordinator tcp:127.0.0.1:0 \
    --out "$DIR/tcp.json" 2> /dev/null
cmp "$DIR/ref.json" "$DIR/tcp.json" ||
    fail "tcp-transport artifact differs from the serial run"

echo "== step 7: fail-fast worker error aborts the whole sweep"
rc=0
SVRSIM_FAULT='throw@CC_TW/SVR16' \
    "$SWEEP" $ARGS --json --workers 3 --out "$DIR/ff.json" \
    2> "$DIR/ff.log" || rc=$?
[ "$rc" -eq 1 ] || fail "fail-fast fabric run exited $rc, expected 1"
[ ! -f "$DIR/ff.json" ] || fail "fail-fast fabric run wrote an artifact"
grep -q "InternalInvariant" "$DIR/ff.log" ||
    fail "coordinator lost the worker's error code"

echo "== step 8: coordinator SIGKILLed mid-sweep, restart resumes"
PORT=$((20000 + $$ % 20000))
rc=0
SVRSIM_FAULT='ckill@Camel/SVR16' \
    "$SWEEP" $ARGS --json --workers 2 \
    --coordinator "tcp:127.0.0.1:$PORT" --out "$DIR/ck.json" \
    2> "$DIR/ck1.log" || rc=$?
[ "$rc" -ne 0 ] || fail "ckill'd coordinator run exited 0"
grep -q "injected coordinator kill" "$DIR/ck1.log" ||
    fail "coordinator kill did not fire"
[ -f "$DIR/ck.json.journal" ] || fail "killed coordinator left no journal"
# Restart on the same endpoint: the journal is replayed, orphaned
# workers from run 1 may rejoin (their old-epoch leases are fenced),
# and the sweep finishes byte-identically.
"$SWEEP" $ARGS --json --workers 2 \
    --coordinator "tcp:127.0.0.1:$PORT" --resume --out "$DIR/ck.json" \
    2> "$DIR/ck2.log"
grep -q "restored from journal" "$DIR/ck2.log" ||
    fail "restarted coordinator restored nothing"
cmp "$DIR/ref.json" "$DIR/ck.json" ||
    fail "artifact differs after a coordinator crash + restart"

rm -rf "$DIR"
echo "PASS: distributed sweep fabric is byte-identical to serial"
