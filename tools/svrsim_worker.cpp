/**
 * @file
 * svrsim_worker — fabric worker process for distributed sweeps.
 *
 * Usage:
 *   svrsim_worker --connect ADDR [--jobs N] [--heartbeat-ms MS]
 *                 [--reconnect-ms MS]
 *
 * ADDR is the coordinator endpoint, "unix:PATH" or "tcp:HOST:PORT"
 * (what `svrsim_sweep --coordinator` printed, or what the coordinator
 * passes when it spawns workers itself via --workers N). Everything
 * about the sweep — suite, configs, window, seed, sampling, retry
 * policy — arrives from the coordinator in the WELCOME message, so a
 * worker needs no sweep flags and cannot disagree with the
 * coordinator about what a cell means.
 *
 * --jobs N simulates the cells of one lease on N threads (default 1).
 * --heartbeat-ms MS pings the coordinator every MS ms while busy
 *   (default 1000; --heartbeat is an accepted alias). Clamped below
 *   leaseTimeout/3 from the WELCOME so a busy worker is never
 *   mistaken for a dead one.
 * --reconnect-ms MS keeps retrying a lost coordinator connection with
 *   exponential backoff + jitter for MS ms before giving up (default
 *   30000; 0 disables reconnecting) — rides out coordinator restarts
 *   and network partitions.
 *
 * Exit codes: 0 = sweep finished (FIN), 1 = fatal simulation error
 * (also reported to the coordinator), 2 = lost the coordinator for
 * longer than the reconnect window.
 */

#include <cstdio>
#include <string>

#include "common/error.hh"
#include "common/logging.hh"
#include "sim/fabric.hh"

using namespace svr;

int
main(int argc, char **argv)
{
    try {
        WorkerOptions opts;
        for (int i = 1; i < argc; i++) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("missing value for %s", arg.c_str());
                return argv[++i];
            };
            if (arg == "--connect") {
                opts.connect = next();
            } else if (arg == "--jobs") {
                opts.jobs = static_cast<unsigned>(std::stoul(next()));
                if (opts.jobs == 0)
                    opts.jobs = 1;
            } else if (arg == "--heartbeat" || arg == "--heartbeat-ms") {
                opts.heartbeatMs = std::stoi(next());
                if (opts.heartbeatMs <= 0)
                    fatal("--heartbeat-ms must be > 0");
            } else if (arg == "--reconnect-ms") {
                opts.reconnectMs = std::stoi(next());
                if (opts.reconnectMs < 0)
                    fatal("--reconnect-ms must be >= 0");
            } else {
                fatal("unknown argument '%s' (want --connect ADDR "
                      "[--jobs N] [--heartbeat-ms MS] "
                      "[--reconnect-ms MS])",
                      arg.c_str());
            }
        }
        if (opts.connect.empty())
            fatal("--connect ADDR is required");
        return runFabricWorker(opts);
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
