#!/usr/bin/env bash
# End-to-end crash-safety test for svrsim_sweep:
#
#   1. clean run            -> reference artifact, no journal left behind
#   2. SVRSIM_FAULT=kill@.. -> process SIGKILLs itself mid-sweep, leaving
#                              a journal and NO final artifact
#   3. --resume (no fault)  -> restores journaled cells, finishes the
#                              rest, artifact byte-identical to the
#                              clean run, journal cleaned up
#   4. SVRSIM_FAULT=throw@.. --keep-going -> exit 3 with a structured
#                              failure row in the artifact
#   5. same fault, fail-fast -> exit 1, no artifact
#
# Usage: resume_roundtrip_test.sh <svrsim_sweep-binary> <scratch-dir>
set -eu

SWEEP=$1
DIR=$2
ARGS="--suite quick --configs ino,svr16 --window 10000 --json"

fail() { echo "FAIL: $*" >&2; exit 1; }

rm -rf "$DIR"
mkdir -p "$DIR"

echo "== step 1: uninterrupted reference run"
"$SWEEP" $ARGS --out "$DIR/clean.json" 2> /dev/null
[ -f "$DIR/clean.json" ] || fail "clean run wrote no artifact"
[ ! -f "$DIR/clean.json.journal" ] || fail "clean run left its journal"

echo "== step 2: injected SIGKILL mid-sweep"
rc=0
SVRSIM_FAULT='kill@CC_TW/SVR16' \
    "$SWEEP" $ARGS --out "$DIR/crash.json" 2> /dev/null || rc=$?
[ "$rc" -ne 0 ] || fail "killed run exited 0"
[ ! -f "$DIR/crash.json" ] || fail "killed run wrote a final artifact"
[ -f "$DIR/crash.json.journal" ] || fail "killed run left no journal"

echo "== step 3: --resume completes and matches byte for byte"
"$SWEEP" $ARGS --out "$DIR/crash.json" --resume 2> "$DIR/resume.log"
grep -q "resume:" "$DIR/resume.log" || fail "resume did not load the journal"
cmp "$DIR/clean.json" "$DIR/crash.json" ||
    fail "resumed artifact differs from the uninterrupted run"
[ ! -f "$DIR/crash.json.journal" ] || fail "resume left its journal behind"

echo "== step 3b: --resume from a journal truncated mid-record"
rc=0
SVRSIM_FAULT='kill@CC_TW/SVR16' \
    "$SWEEP" $ARGS --out "$DIR/trunc.json" 2> /dev/null || rc=$?
[ "$rc" -ne 0 ] || fail "killed run exited 0"
SIZE=$(wc -c < "$DIR/trunc.json.journal")
[ "$SIZE" -gt 40 ] || fail "journal too small to truncate"
# Cut the final record mid-write (no trailing newline survives).
truncate -s $((SIZE - 40)) "$DIR/trunc.json.journal"
"$SWEEP" $ARGS --out "$DIR/trunc.json" --resume 2> "$DIR/trunc.log"
grep -q "torn" "$DIR/trunc.log" ||
    fail "resume did not report the torn final record"
cmp "$DIR/clean.json" "$DIR/trunc.json" ||
    fail "truncated-journal resume differs from the uninterrupted run"

echo "== step 4: keep-going records the failure and exits 3"
rc=0
SVRSIM_FAULT='throw@CC_TW/SVR16' \
    "$SWEEP" $ARGS --out "$DIR/kg.json" --keep-going 2> /dev/null || rc=$?
[ "$rc" -eq 3 ] || fail "keep-going run exited $rc, expected 3"
grep -q '"status": "failed"' "$DIR/kg.json" ||
    fail "keep-going artifact has no failure record"
grep -q 'InternalInvariant' "$DIR/kg.json" ||
    fail "failure record lost its error code"

echo "== step 5: fail-fast aborts with exit 1 and no artifact"
rc=0
SVRSIM_FAULT='throw@CC_TW/SVR16' \
    "$SWEEP" $ARGS --out "$DIR/ff.json" 2> /dev/null || rc=$?
[ "$rc" -eq 1 ] || fail "fail-fast run exited $rc, expected 1"
[ ! -f "$DIR/ff.json" ] || fail "fail-fast run wrote an artifact"

rm -rf "$DIR"
echo "PASS: resume round trip is byte-identical"
