/**
 * @file
 * svrsim_trace — print an annotated execution trace: disassembly,
 * operand values, memory addresses, and (with --svr) the engine's
 * runahead events interleaved. The debugging companion to svrsim_cli.
 *
 * Usage:
 *   svrsim_trace [--workload NAME] [--count N] [--skip M] [--svr]
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "core/executor.hh"
#include "isa/disassembler.hh"
#include "mem/memory_system.hh"
#include "svr/svr_engine.hh"
#include "workloads/suites.hh"

using namespace svr;

namespace
{

const char *
eventName(SvrEventKind kind)
{
    switch (kind) {
      case SvrEventKind::Trigger: return "TRIGGER";
      case SvrEventKind::Terminate: return "TERMINATE";
      case SvrEventKind::Timeout: return "TIMEOUT";
      case SvrEventKind::NestedAbort: return "NESTED-ABORT";
      case SvrEventKind::ExtraChain: return "EXTRA-CHAIN";
      case SvrEventKind::Retarget: return "RETARGET";
      case SvrEventKind::WaitSuppress: return "WAIT";
      case SvrEventKind::GovernorBan: return "GOVERNOR-BAN";
      default: return "?";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "PR_KR";
    std::uint64_t count = 64;
    std::uint64_t skip = 0;
    bool with_svr = false;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--workload")
            workload = next();
        else if (arg == "--count")
            count = std::stoull(next());
        else if (arg == "--skip")
            skip = std::stoull(next());
        else if (arg == "--svr")
            with_svr = true;
        else
            fatal("unknown argument '%s'", arg.c_str());
    }

    setInformEnabled(false);
    const WorkloadInstance w = findWorkload(workload).make();
    MemorySystem mem(MemParams{});
    Executor exec(*w.program, *w.mem);

    SvrParams sp;
    sp.enableEventLog = true;
    sp.eventLogCapacity = 1u << 20;
    SvrEngine engine(sp, mem, exec);

    std::printf("# trace of %s (%s SVR)\n", workload.c_str(),
                with_svr ? "with" : "without");
    std::printf("# %-8s %-10s %-34s %-18s %s\n", "seq", "pc", "disasm",
                "addr", "result");

    std::size_t last_event = 0;
    Cycle cycle = 0;
    for (std::uint64_t i = 0; i < skip + count && !exec.halted(); i++) {
        const DynInst dyn = exec.step();
        if (with_svr) {
            engine.onIssue(dyn, cycle);
            cycle += 2;
        }
        if (i < skip)
            continue;
        char addr_buf[24] = "";
        if (dyn.si->isMem())
            std::snprintf(addr_buf, sizeof(addr_buf), "[0x%llx]",
                          static_cast<unsigned long long>(dyn.addr));
        char result_buf[32] = "";
        if (dyn.si->writesIntReg())
            std::snprintf(result_buf, sizeof(result_buf), "-> 0x%llx",
                          static_cast<unsigned long long>(dyn.result));
        else if (dyn.si->isCondBranch())
            std::snprintf(result_buf, sizeof(result_buf), "%s",
                          dyn.taken ? "taken" : "not-taken");
        std::printf("  %-8llu 0x%-8llx %-34s %-18s %s\n",
                    static_cast<unsigned long long>(dyn.seq),
                    static_cast<unsigned long long>(dyn.pc),
                    disassemble(*dyn.si).c_str(), addr_buf, result_buf);
        if (with_svr) {
            const auto &log = engine.eventLog();
            for (; last_event < log.size(); last_event++) {
                const SvrEvent &e = log[last_event];
                std::printf("           >>> SVR %-12s pc=0x%llx lanes=%u\n",
                            eventName(e.kind),
                            static_cast<unsigned long long>(e.pc),
                            e.lanes);
            }
        }
    }
    return 0;
}
