/**
 * @file
 * svrsim_sweep — run a cartesian sweep of (workload x machine) and
 * emit CSV or JSON for downstream analysis.
 *
 * Usage:
 *   svrsim_sweep [--suite graph|hpcdb|full|spec|quick]
 *                [--configs LIST] [--window INSTRS] [--jobs N] [--json]
 *
 * LIST is comma-separated from: ino, imp, ooo, svrN (e.g. svr16).
 * Default: --suite quick --configs ino,imp,ooo,svr16,svr64
 *
 * Cells are sharded across a work-stealing thread pool (--jobs, or
 * the SVRSIM_JOBS environment variable, default: all hardware
 * threads). Output on stdout is byte-identical for any job count;
 * progress and the cells/sec summary go to stderr.
 *
 * Examples:
 *   svrsim_sweep --suite full --configs ino,svr16 > results.csv
 *   SVRSIM_JOBS=8 svrsim_sweep --suite quick --json > results.json
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

using namespace svr;

namespace
{

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t end = s.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string suite = "quick";
    std::string configs_arg = "ino,imp,ooo,svr16,svr64";
    std::uint64_t window = presets::simWindow();
    unsigned jobs = 0; // 0 = SVRSIM_JOBS / hardware default
    bool json = false;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--suite") {
            suite = next();
        } else if (arg == "--configs") {
            configs_arg = next();
        } else if (arg == "--window") {
            window = std::stoull(next());
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--json") {
            json = true;
        } else {
            fatal("unknown argument '%s' (see header comment)",
                  arg.c_str());
        }
    }

    std::vector<WorkloadSpec> workloads;
    if (suite == "graph")
        workloads = graphSuite();
    else if (suite == "hpcdb")
        workloads = hpcdbSuite();
    else if (suite == "full")
        workloads = fullSuite();
    else if (suite == "spec")
        workloads = specSuite();
    else if (suite == "quick")
        workloads = quickSuite();
    else
        fatal("unknown suite '%s'", suite.c_str());

    std::vector<SimConfig> configs;
    for (const std::string &name : split(configs_arg, ',')) {
        if (name.empty())
            continue;
        SimConfig c = presets::byName(name);
        c.maxInstructions = window;
        configs.push_back(c);
    }

    MatrixOptions opts;
    opts.jobs = jobs;
    const auto matrix = runMatrix(workloads, configs, opts);
    const std::vector<SimResult> results = flattenMatrix(matrix);

    if (json) {
        std::fputs(toJson(results).c_str(), stdout);
    } else {
        std::printf("%s\n", csvHeader().c_str());
        for (const auto &r : results)
            std::printf("%s\n", csvRow(r).c_str());
    }
    return 0;
}
