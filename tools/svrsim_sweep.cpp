/**
 * @file
 * svrsim_sweep — run a cartesian sweep of (workload x machine) and
 * emit CSV or JSON for downstream analysis.
 *
 * Usage:
 *   svrsim_sweep [--suite graph|hpcdb|full|spec|quick]
 *                [--configs LIST] [--window INSTRS] [--jobs N] [--json]
 *                [--sample-every E] [--sample-window W] [--warmup U]
 *                [--out PATH] [--resume] [--keep-going] [--retries N]
 *
 * LIST is comma-separated from: ino, imp, ooo, svrN (e.g. svr16).
 * Default: --suite quick --configs ino,imp,ooo,svr16,svr64
 *
 * Cells are sharded across a work-stealing thread pool (--jobs, or
 * the SVRSIM_JOBS environment variable, default: all hardware
 * threads). Output is byte-identical for any job count; progress and
 * the cells/sec summary go to stderr.
 *
 * Fault tolerance:
 *   --out PATH      write the artifact atomically (tmp+rename) to PATH
 *                   instead of stdout, journaling each completed cell
 *                   to PATH.journal as it finishes
 *   --resume        restore cells already in PATH.journal (after a
 *                   crash/SIGKILL) instead of re-simulating them; the
 *                   final artifact is byte-identical to an
 *                   uninterrupted run
 *   --keep-going    record a failing cell as a structured failure row
 *                   (status=failed) and keep sweeping; exit code 3
 *                   when any cell failed. Default is fail-fast.
 *   --retries N     attempts per cell before a failure counts (def. 1)
 *
 * Sampled sweeps (--sample-every, see svrsim_cli) append three CSV
 * columns (sample_windows, measured_instructions, cpi_stderr) and tag
 * the journal header with the sampling parameters, so --resume
 * rejects a journal written under different sampling.
 *
 * The SVRSIM_FAULT environment variable injects deterministic faults
 * for testing (see src/common/fault.hh for the grammar).
 *
 * Examples:
 *   svrsim_sweep --suite full --configs ino,svr16 > results.csv
 *   svrsim_sweep --suite quick --json --out results.json --resume
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/io.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

using namespace svr;

namespace
{

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t end = s.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

bool
fileExists(const std::string &path)
{
    if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
        std::fclose(f);
        return true;
    }
    return false;
}

int
runSweep(int argc, char **argv)
{
    std::string suite = "quick";
    std::string configs_arg = "ino,imp,ooo,svr16,svr64";
    std::uint64_t window = presets::simWindow();
    unsigned jobs = 0; // 0 = SVRSIM_JOBS / hardware default
    bool json = false;
    std::string out_path;
    bool resume = false;
    bool keep_going = false;
    unsigned retries = 1;
    SamplingParams sampling;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--suite") {
            suite = next();
        } else if (arg == "--configs") {
            configs_arg = next();
        } else if (arg == "--window") {
            window = std::stoull(next());
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--sample-every") {
            sampling.sampleEvery = std::stoull(next());
        } else if (arg == "--sample-window") {
            sampling.sampleWindow = std::stoull(next());
        } else if (arg == "--warmup") {
            sampling.warmup = std::stoull(next());
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--keep-going") {
            keep_going = true;
        } else if (arg == "--retries") {
            retries = static_cast<unsigned>(std::stoul(next()));
            if (retries == 0)
                fatal("--retries must be >= 1");
        } else {
            fatal("unknown argument '%s' (see header comment)",
                  arg.c_str());
        }
    }
    if (resume && out_path.empty())
        fatal("--resume requires --out PATH (the journal lives at "
              "PATH.journal)");

    std::vector<WorkloadSpec> workloads;
    if (suite == "graph")
        workloads = graphSuite();
    else if (suite == "hpcdb")
        workloads = hpcdbSuite();
    else if (suite == "full")
        workloads = fullSuite();
    else if (suite == "spec")
        workloads = specSuite();
    else if (suite == "quick")
        workloads = quickSuite();
    else
        fatal("unknown suite '%s'", suite.c_str());

    std::vector<SimConfig> configs;
    for (const std::string &name : split(configs_arg, ',')) {
        if (name.empty())
            continue;
        SimConfig c = presets::byName(name);
        c.maxInstructions = window;
        c.sampling = sampling;
        configs.push_back(c);
    }

    const FaultPlan faults = FaultPlan::fromEnv();

    MatrixOptions opts;
    opts.jobs = jobs;
    opts.keepGoing = keep_going;
    opts.maxAttempts = retries;
    opts.faultPlan = faults;

    SweepKey key{suite, configs_arg, window, opts.baseSeed, {}};
    if (sampling.enabled()) {
        key.sampling = std::to_string(sampling.sampleEvery) + "/" +
                       std::to_string(sampling.sampleWindow) + "/" +
                       std::to_string(sampling.warmup);
    }
    const std::string journal_path = out_path + ".journal";
    std::unique_ptr<SweepJournal> journal;
    JournalCells completed;

    if (!out_path.empty()) {
        if (resume && fileExists(journal_path)) {
            completed = loadJournal(journal_path, key);
            inform("resume: %zu cell(s) already journaled in '%s'",
                   completed.size(), journal_path.c_str());
            opts.restoreCell = [&completed](const std::string &w,
                                            const std::string &c,
                                            SimResult &out) {
                const auto it = completed.find({w, c});
                if (it == completed.end())
                    return false;
                out = it->second;
                return true;
            };
        } else if (resume) {
            inform("resume: no journal at '%s'; starting fresh",
                   journal_path.c_str());
        }
        journal = std::make_unique<SweepJournal>(journal_path, key);
        opts.onCellDone = [&journal, &faults](const SimResult &r) {
            journal->append(r);
            if (faults.shouldKill(r.workload, r.config)) {
                // Crash-safety test hook: die without any cleanup,
                // exactly like an external SIGKILL, right after this
                // cell hit the journal.
                warn("injected kill after cell %s/%s",
                     r.workload.c_str(), r.config.c_str());
                std::raise(SIGKILL);
            }
        };
    }

    MatrixTiming timing;
    const auto matrix = runMatrix(workloads, configs, opts, &timing);
    const std::vector<SimResult> results = flattenMatrix(matrix);

    std::string content;
    if (json) {
        content = toJson(results);
    } else {
        content = csvHeader(sampling.enabled()) + "\n";
        for (const auto &r : results)
            content += csvRow(r, sampling.enabled()) + "\n";
    }

    if (!out_path.empty()) {
        writeFileAtomic(out_path, content, faults);
        journal.reset();
        // The artifact is durable; the journal is now redundant.
        std::remove(journal_path.c_str());
    } else {
        std::fputs(content.c_str(), stdout);
    }
    return timing.failedCells > 0 ? 3 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runSweep(argc, argv);
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
