/**
 * @file
 * svrsim_sweep — run a cartesian sweep of (workload x machine) and
 * emit CSV or JSON for downstream analysis.
 *
 * Usage:
 *   svrsim_sweep [--suite graph|hpcdb|full|spec|quick]
 *                [--configs LIST] [--window INSTRS] [--jobs N] [--json]
 *                [--sample-every E] [--sample-window W] [--warmup U]
 *                [--out PATH] [--resume] [--keep-going] [--retries N]
 *                [--workers N] [--coordinator ADDR] [--worker ADDR]
 *                [--shards LIST] [--keep-journal] [--lease-timeout MS]
 *                [--chunk N] [--heartbeat-ms MS] [--hedge-ms MS]
 *                [--reconnect-ms MS] [--journal-fsync]
 *
 * LIST is comma-separated from: ino, imp, ooo, svrN (e.g. svr16).
 * Default: --suite quick --configs ino,imp,ooo,svr16,svr64
 *
 * Cells are sharded across a work-stealing thread pool (--jobs, or
 * the SVRSIM_JOBS environment variable, default: all hardware
 * threads). Output is byte-identical for any job count; progress and
 * the cells/sec summary go to stderr.
 *
 * Distributed sweeps (the fabric, sim/fabric.hh):
 *   --workers N       run as coordinator and spawn N local worker
 *                     processes (svrsim_worker, found next to this
 *                     binary or via SVRSIM_WORKER_BIN); cells are
 *                     leased to workers and merged back into an
 *                     artifact byte-identical to a serial run
 *   --coordinator A   listen on an explicit endpoint ("unix:PATH" or
 *                     "tcp:HOST:PORT") so external svrsim_worker
 *                     processes can attach; combines with --workers
 *   --worker A        run as a fabric worker attached to coordinator
 *                     endpoint A (--jobs = threads per lease); all
 *                     sweep parameters come from the coordinator
 *   --shards LIST     merge comma-separated journal shard files
 *                     (e.g. journals shipped from another host) as
 *                     already-completed cells before sweeping
 *   --lease-timeout   silence window [ms] after which the coordinator
 *                     declares a worker dead (default 60000)
 *   --heartbeat-ms    worker PING period [ms] (default 1000); must be
 *                     < leaseTimeout/3 so a busy worker fits several
 *                     heartbeats into one timeout window. Forwarded
 *                     to spawned workers; shipped to external ones
 *                     via WELCOME. In --worker mode, sets this
 *                     worker's own heartbeat.
 *   --hedge-ms MS     straggler hedging: speculatively re-lease the
 *                     cells of a lease older than MS ms to an idle
 *                     worker (0 = auto leaseTimeout/2, the default;
 *                     negative disables hedging)
 *   --reconnect-ms    (--worker mode) keep retrying a lost
 *                     coordinator connection for MS ms (default
 *                     30000; 0 disables) — rides out coordinator
 *                     restarts and partitions
 *   --chunk N         cells per lease (default: auto)
 *   --keep-journal    keep PATH.journal after a successful sweep
 *   --journal-fsync   fsync every journal record (and the artifact
 *                     rename) so the sweep survives power loss, not
 *                     just process death; slower per cell
 *
 * Fault tolerance:
 *   --out PATH      write the artifact atomically (tmp+rename) to PATH
 *                   instead of stdout, journaling each completed cell
 *                   to PATH.journal as it finishes
 *   --resume        restore cells already in PATH.journal (after a
 *                   crash/SIGKILL) instead of re-simulating them; the
 *                   final artifact is byte-identical to an
 *                   uninterrupted run
 *   --keep-going    record a failing cell as a structured failure row
 *                   (status=failed) and keep sweeping; exit code 3
 *                   when any cell failed. Default is fail-fast.
 *   --retries N     attempts per cell before a failure counts (def. 1)
 *
 * Sampled sweeps (--sample-every, see svrsim_cli) append three CSV
 * columns (sample_windows, measured_instructions, cpi_stderr) and tag
 * the journal header with the sampling parameters, so --resume
 * rejects a journal written under different sampling.
 *
 * The SVRSIM_FAULT environment variable injects deterministic faults
 * for testing (see src/common/fault.hh for the grammar).
 *
 * Examples:
 *   svrsim_sweep --suite full --configs ino,svr16 > results.csv
 *   svrsim_sweep --suite quick --json --out results.json --resume
 *   svrsim_sweep --suite full --workers 8 --out results.csv
 *   svrsim_sweep --coordinator tcp:0.0.0.0:7707 --workers 2 --out r.csv
 *   svrsim_worker --connect tcp:buildhost:7707 --jobs 16
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/io.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/fabric.hh"
#include "sim/journal.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

using namespace svr;

namespace
{

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t end = s.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

bool
fileExists(const std::string &path)
{
    if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
        std::fclose(f);
        return true;
    }
    return false;
}

std::string
dirName(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string{}
                                      : path.substr(0, slash);
}

int
runSweep(int argc, char **argv)
{
    std::string suite = "quick";
    std::string configs_arg = "ino,imp,ooo,svr16,svr64";
    std::uint64_t window = presets::simWindow();
    unsigned jobs = 0; // 0 = SVRSIM_JOBS / hardware default
    bool json = false;
    std::string out_path;
    bool resume = false;
    bool keep_going = false;
    bool keep_journal = false;
    unsigned retries = 1;
    SamplingParams sampling;
    unsigned workers = 0;
    std::string coordinator_listen;
    std::string worker_connect;
    std::string shards_arg;
    int lease_timeout_ms = 60000;
    int heartbeat_ms = 1000;
    int hedge_ms = 0;
    int reconnect_ms = 30000;
    unsigned chunk = 0;
    bool journal_fsync = false;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--suite") {
            suite = next();
        } else if (arg == "--configs") {
            configs_arg = next();
        } else if (arg == "--window") {
            window = std::stoull(next());
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--sample-every") {
            sampling.sampleEvery = std::stoull(next());
        } else if (arg == "--sample-window") {
            sampling.sampleWindow = std::stoull(next());
        } else if (arg == "--warmup") {
            sampling.warmup = std::stoull(next());
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--keep-going") {
            keep_going = true;
        } else if (arg == "--keep-journal") {
            keep_journal = true;
        } else if (arg == "--retries") {
            retries = static_cast<unsigned>(std::stoul(next()));
            if (retries == 0)
                fatal("--retries must be >= 1");
        } else if (arg == "--workers") {
            workers = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--coordinator") {
            coordinator_listen = next();
        } else if (arg == "--worker") {
            worker_connect = next();
        } else if (arg == "--shards") {
            shards_arg = next();
        } else if (arg == "--lease-timeout") {
            lease_timeout_ms = std::stoi(next());
            if (lease_timeout_ms <= 0)
                fatal("--lease-timeout must be > 0 ms");
        } else if (arg == "--heartbeat-ms") {
            heartbeat_ms = std::stoi(next());
            if (heartbeat_ms <= 0)
                fatal("--heartbeat-ms must be > 0");
        } else if (arg == "--hedge-ms") {
            hedge_ms = std::stoi(next());
        } else if (arg == "--reconnect-ms") {
            reconnect_ms = std::stoi(next());
            if (reconnect_ms < 0)
                fatal("--reconnect-ms must be >= 0");
        } else if (arg == "--journal-fsync") {
            journal_fsync = true;
        } else if (arg == "--chunk") {
            chunk = static_cast<unsigned>(std::stoul(next()));
        } else {
            fatal("unknown argument '%s' (see header comment)",
                  arg.c_str());
        }
    }

    if (!worker_connect.empty()) {
        // Worker mode: everything about the sweep arrives over the
        // wire in WELCOME; local sweep flags would be ignored lies.
        if (workers > 0 || !coordinator_listen.empty())
            fatal("--worker excludes --workers/--coordinator");
        WorkerOptions wopts;
        wopts.connect = worker_connect;
        wopts.jobs = jobs > 0 ? jobs : 1;
        wopts.heartbeatMs = heartbeat_ms;
        wopts.reconnectMs = reconnect_ms;
        return runFabricWorker(wopts);
    }

    const bool fabric = workers > 0 || !coordinator_listen.empty();
    if (resume && out_path.empty())
        fatal("--resume requires --out PATH (the journal lives at "
              "PATH.journal)");
    if (fabric && heartbeat_ms * 3 >= lease_timeout_ms)
        fatal("--heartbeat-ms %d is too slow for --lease-timeout %d: "
              "a busy worker must fit several heartbeats into one "
              "timeout window (need heartbeat < leaseTimeout/3)",
              heartbeat_ms, lease_timeout_ms);

    std::vector<WorkloadSpec> workloads = suiteByName(suite);

    std::vector<SimConfig> configs;
    for (const std::string &name : split(configs_arg, ',')) {
        if (name.empty())
            continue;
        SimConfig c = presets::byName(name);
        c.maxInstructions = window;
        c.sampling = sampling;
        configs.push_back(c);
    }

    const FaultPlan faults = FaultPlan::fromEnv();

    MatrixOptions opts;
    opts.jobs = jobs;
    opts.keepGoing = keep_going;
    opts.maxAttempts = retries;
    opts.faultPlan = faults;

    SweepKey key{suite, configs_arg, window, opts.baseSeed, {}};
    if (sampling.enabled()) {
        key.sampling = std::to_string(sampling.sampleEvery) + "/" +
                       std::to_string(sampling.sampleWindow) + "/" +
                       std::to_string(sampling.warmup);
    }
    const std::string journal_path = out_path + ".journal";
    std::unique_ptr<SweepJournal> journal;
    JournalCells completed;
    std::set<std::pair<std::string, std::string>> in_primary;

    if (!out_path.empty() && resume && fileExists(journal_path)) {
        completed = loadJournal(journal_path, key);
        for (const auto &kv : completed)
            in_primary.insert(kv.first);
        inform("resume: %zu cell(s) already journaled in '%s'",
               completed.size(), journal_path.c_str());
    } else if (resume) {
        inform("resume: no journal at '%s'; starting fresh",
               journal_path.c_str());
    }

    if (!shards_arg.empty()) {
        std::vector<std::string> shard_paths;
        for (const std::string &p : split(shards_arg, ','))
            if (!p.empty())
                shard_paths.push_back(p);
        std::size_t dups = 0;
        JournalCells shard_cells =
            loadJournalShards(shard_paths, key, &dups);
        std::size_t added = 0;
        for (auto &kv : shard_cells) {
            if (completed.emplace(kv.first, std::move(kv.second)).second)
                added++;
        }
        inform("shards: %zu cell(s) restored from %zu shard(s) "
               "(%zu duplicate record(s))",
               added, shard_paths.size(), dups);
    }

    if (!out_path.empty()) {
        journal = std::make_unique<SweepJournal>(journal_path, key,
                                                 journal_fsync);
        // Cells restored from shards are not in the primary journal
        // yet; append them so PATH.journal alone can resume the sweep.
        for (const auto &kv : completed) {
            if (in_primary.find(kv.first) == in_primary.end())
                journal->append(kv.second);
        }
    }

    MatrixTiming timing;
    std::vector<SimResult> results;

    if (fabric) {
        SweepSpec spec;
        spec.key = key;
        spec.keepGoing = keep_going;
        spec.retries = retries;

        FabricOptions fopts;
        fopts.listen = coordinator_listen;
        fopts.scratchDir = dirName(out_path);
        fopts.spawnWorkers = workers;
        fopts.workerJobs = jobs > 0 ? jobs : 1;
        fopts.chunk = chunk;
        fopts.leaseTimeoutMs = lease_timeout_ms;
        fopts.heartbeatMs = heartbeat_ms;
        fopts.hedgeMs = hedge_ms;
        fopts.maxCellAttempts = retries > 3 ? retries : 3;

        results = runFabricSweep(workloads, configs, spec, fopts,
                                 completed, journal.get(), &timing);
    } else {
        if (!completed.empty()) {
            opts.restoreCell = [&completed](const std::string &w,
                                            const std::string &c,
                                            SimResult &out) {
                const auto it = completed.find({w, c});
                if (it == completed.end())
                    return false;
                out = it->second;
                return true;
            };
        }
        if (journal) {
            opts.onCellDone = [&journal, &faults](const SimResult &r) {
                journal->append(r);
                if (faults.shouldKill(r.workload, r.config)) {
                    // Crash-safety test hook: die without any cleanup,
                    // exactly like an external SIGKILL, right after
                    // this cell hit the journal.
                    warn("injected kill after cell %s/%s",
                         r.workload.c_str(), r.config.c_str());
                    std::raise(SIGKILL);
                }
            };
        }
        const auto matrix = runMatrix(workloads, configs, opts, &timing);
        results = flattenMatrix(matrix);
    }

    std::string content;
    if (json) {
        content = toJson(results);
    } else {
        content = csvHeader(sampling.enabled()) + "\n";
        for (const auto &r : results)
            content += csvRow(r, sampling.enabled()) + "\n";
    }

    if (!out_path.empty()) {
        writeFileAtomic(out_path, content, faults, journal_fsync);
        journal.reset();
        // The artifact is durable; the journal is now redundant.
        if (!keep_journal)
            std::remove(journal_path.c_str());
    } else {
        std::fputs(content.c_str(), stdout);
    }
    return timing.failedCells > 0 ? 3 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runSweep(argc, argv);
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
